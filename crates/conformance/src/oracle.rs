//! The oracle registry: every density-producing engine in the workspace
//! paired with its ground-truth reference.
//!
//! [`run_case`] pushes one [`CaseSpec`] through all pairs and returns one
//! [`PairResult`] per pair. References are computed once per case and
//! shared (the SCAN oracle is `O(XYn)` — by far the most expensive part).
//!
//! Pair inventory (engine → oracle, policy):
//!
//! | pair | oracle | policy |
//! |------|--------|--------|
//! | 4 SLAM variants | SCAN | sweep ULPs |
//! | parallel bucket / parallel RAO sort | sequential twin | bitwise |
//! | weighted sweep | `weighted_scan` | sweep ULPs |
//! | parallel weighted | sequential weighted | bitwise |
//! | multi-bandwidth | solo bucket runs | bitwise |
//! | RQS_kd / RQS_ball / QUAD | SCAN | tree ULPs `(c/b)⁴` |
//! | Z-order (fraction 1) | SCAN | tree ULPs |
//! | aKDE | SCAN | absolute bound `w·n·ε/2` |
//! | STKDV frames | per-frame `weighted_scan` | sweep ULPs |
//! | parallel STKDV | sequential STKDV | bitwise |
//! | incremental pan | full recompute | sweep ULPs |
//! | NKDV forward augmentation | per-lixel Dijkstra | network ULPs |
//! | stitched tiles | monolithic SLAM_BUCKET | bitwise |
//! | instrumented bucket | same sweep, recorder off | bitwise |
//! | f64x4 emit (bucket / sort) | forced-scalar twin | bitwise |
//! | f64x4 envelope fill | forced-scalar twin | bitwise |
//! | coreset grid / coreset sort | SCAN | error bound (advertised ε) |
//! | coreset overview serve | SCAN | error bound (advertised ε) |
//! | coreset deep zoom | monolithic SLAM_BUCKET | bitwise |
//! | streaming append serve | cold rebuild of the snapshot | bitwise |
//! | streaming expire serve | cold rebuild of the snapshot | bitwise |
//! | streaming overview (compacted) | SCAN over the live set | error bound (advertised ε) |
//!
//! Auxiliary inputs a pair needs beyond the case itself (per-point
//! weights, event timestamps, the road network) are synthesised from
//! [`CaseSpec::aux_seed`], so a corpus line alone reproduces the full
//! computation.

use kdv_baselines::AnyMethod;
use kdv_core::driver::KdvParams;
use kdv_core::envelope::{BandIndex, EnvelopeBuffer};
use kdv_core::parallel::{
    compute_parallel, compute_parallel_rao, compute_weighted_parallel, ParallelEngine,
};
use kdv_core::simd::{with_mode, SimdMode};
use kdv_core::weighted::{compute_weighted, weighted_scan};
use kdv_core::{multi_bandwidth, rao, sweep_bucket, KdvEngine, Method, Rect};
use kdv_coreset::{CoresetMethod, CoresetSpec};
use kdv_data::record::EventRecord;
use kdv_explore::incremental::pan_render;
use kdv_network::{compute_nkdv, compute_nkdv_naive, NetPosition, NkdvParams, RoadNetwork};
use kdv_serve::{
    LiveConfig, LiveTileServer, OverviewConfig, PyramidSpec, ServeConfig, TileServer, TileTier,
    Viewport,
};
use kdv_stream::rebuild_grid;
use kdv_temporal::{compute_stkdv, compute_stkdv_parallel, FrameSpec, StKdvConfig, TemporalKernel};

use crate::case::{CaseSpec, SplitMix64};
use crate::tolerance::{compare, unit_kernel_peak, Comparison, Policy};

/// Names of every pair in the registry, in execution order.
pub const PAIR_NAMES: [&str; 30] = [
    "SLAM_SORT vs SCAN",
    "SLAM_BUCKET vs SCAN",
    "SLAM_SORT^(RAO) vs SCAN",
    "SLAM_BUCKET^(RAO) vs SCAN",
    "parallel bucket vs sequential",
    "parallel RAO sort vs sequential",
    "weighted sweep vs weighted_scan",
    "parallel weighted vs sequential",
    "multi-bandwidth vs solo sweeps",
    "RQS_kd vs SCAN",
    "RQS_ball vs SCAN",
    "QUAD vs SCAN",
    "Z-order(f=1) vs SCAN",
    "aKDE bound vs SCAN",
    "STKDV vs weighted_scan",
    "parallel STKDV vs sequential",
    "incremental pan vs recompute",
    "NKDV forward vs Dijkstra",
    "stitched tiles vs monolithic",
    "instrumented bucket vs plain",
    "simd emit vs scalar emit (bucket)",
    "simd emit vs scalar emit (sort)",
    "simd envelope fill vs scalar",
    "coreset grid vs SCAN (ε-bound)",
    "coreset sort vs SCAN (ε-bound)",
    "coreset overview serve vs SCAN (ε-bound)",
    "coreset deep zoom vs monolithic",
    "streaming append serve vs rebuild",
    "streaming expire serve vs rebuild",
    "streaming overview (compacted) vs SCAN (ε-bound)",
];

/// Outcome of one engine×oracle pair on one case.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Entry of [`PAIR_NAMES`].
    pub pair: &'static str,
    /// Numeric comparison, when both sides produced output.
    pub comparison: Option<Comparison>,
    /// Engine/oracle error text, when a side failed to produce output.
    pub error: Option<String>,
}

impl PairResult {
    /// Whether the pair conformed on this case. An engine error is a
    /// violation: the generator only emits valid configurations, so
    /// `Err(_)` means an engine rejected (or crashed on) input its oracle
    /// accepts.
    pub fn pass(&self) -> bool {
        self.error.is_none() && self.comparison.map(|c| c.pass).unwrap_or(false)
    }
}

fn ok(pair: &'static str, policy: Policy, got: &[f64], reference: &[f64]) -> PairResult {
    PairResult { pair, comparison: Some(compare(policy, got, reference)), error: None }
}

fn fail(pair: &'static str, error: String) -> PairResult {
    PairResult { pair, comparison: None, error: Some(error) }
}

/// Runs every registry pair on `case`.
pub fn run_case(case: &CaseSpec) -> Vec<PairResult> {
    let mut out = Vec::with_capacity(PAIR_NAMES.len());
    let params = match case.params() {
        Ok(p) => p,
        Err(e) => {
            return PAIR_NAMES.iter().map(|pair| fail(pair, format!("invalid case: {e}"))).collect()
        }
    };
    let pts = &case.points;

    // The shared SCAN oracle.
    let scan = match AnyMethod::Scan.compute(&params, pts) {
        Ok(o) => o.grid,
        Err(e) => {
            return PAIR_NAMES.iter().map(|pair| fail(pair, format!("SCAN oracle: {e}"))).collect()
        }
    };

    // --- SLAM variants vs SCAN -------------------------------------------
    // term scale Σ|wᵢ|·K(0) flooring every scaled budget (tolerance
    // policy, fact 3)
    let term = case.weight.abs() * pts.len() as f64 * unit_kernel_peak(case.kernel, case.bandwidth);
    let sweep = Policy::sweep_exact(term);
    for (name, method) in PAIR_NAMES.iter().zip(Method::ALL) {
        match KdvEngine::new(method).compute(&params, pts) {
            Ok(g) => out.push(ok(name, sweep, g.values(), scan.values())),
            Err(e) => out.push(fail(name, e.to_string())),
        }
    }

    // --- parallel drivers vs their sequential twins (bitwise) ------------
    out.push(
        match (
            compute_parallel(&params, pts, ParallelEngine::Bucket, 3),
            sweep_bucket::compute(&params, pts),
        ) {
            (Ok(p), Ok(s)) => ok(PAIR_NAMES[4], Policy::Bitwise, p.values(), s.values()),
            (p, s) => fail(PAIR_NAMES[4], two_errors(p.err(), s.err())),
        },
    );
    out.push(
        match (
            compute_parallel_rao(&params, pts, ParallelEngine::Sort, 2),
            rao::compute_sort(&params, pts),
        ) {
            (Ok(p), Ok(s)) => ok(PAIR_NAMES[5], Policy::Bitwise, p.values(), s.values()),
            (p, s) => fail(PAIR_NAMES[5], two_errors(p.err(), s.err())),
        },
    );

    // --- weighted sweep --------------------------------------------------
    let weights = derive_weights(case);
    let weighted_term = weights.iter().map(|w| w.abs()).sum::<f64>()
        * unit_kernel_peak(case.kernel, case.bandwidth);
    out.push(match compute_weighted(&params, pts, &weights) {
        Ok(g) => {
            let reference = weighted_scan(&params, pts, &weights);
            ok(PAIR_NAMES[6], Policy::sweep_exact(weighted_term), g.values(), reference.values())
        }
        Err(e) => fail(PAIR_NAMES[6], e.to_string()),
    });
    out.push(
        match (
            compute_weighted_parallel(&params, pts, &weights, 3),
            compute_weighted(&params, pts, &weights),
        ) {
            (Ok(p), Ok(s)) => ok(PAIR_NAMES[7], Policy::Bitwise, p.values(), s.values()),
            (p, s) => fail(PAIR_NAMES[7], two_errors(p.err(), s.err())),
        },
    );

    // --- multi-bandwidth vs solo runs (bitwise) --------------------------
    let bandwidths = [case.bandwidth * 0.5, case.bandwidth, case.bandwidth * 1.7];
    out.push(match multi_bandwidth::compute_multi_bandwidth(&params, pts, &bandwidths) {
        Ok(grids) => {
            let mut got = Vec::new();
            let mut reference = Vec::new();
            let mut solo_err = None;
            for (g, &b) in grids.iter().zip(&bandwidths) {
                let mut solo_params = params;
                solo_params.bandwidth = b;
                match sweep_bucket::compute(&solo_params, pts) {
                    Ok(s) => {
                        got.extend_from_slice(g.values());
                        reference.extend_from_slice(s.values());
                    }
                    Err(e) => solo_err = Some(e),
                }
            }
            match solo_err {
                None => ok(PAIR_NAMES[8], Policy::Bitwise, &got, &reference),
                Some(e) => fail(PAIR_NAMES[8], format!("solo oracle: {e}")),
            }
        }
        Err(e) => fail(PAIR_NAMES[8], e.to_string()),
    });

    // --- tree baselines vs SCAN ------------------------------------------
    let tree = Policy::tree_exact(case.region_half_diagonal(), case.bandwidth, term);
    for (i, method) in
        [AnyMethod::RqsKd, AnyMethod::RqsBall, AnyMethod::Quad].into_iter().enumerate()
    {
        let name = PAIR_NAMES[9 + i];
        out.push(match method.compute(&params, pts) {
            Ok(o) => ok(name, tree, o.grid.values(), scan.values()),
            Err(e) => fail(name, e.to_string()),
        });
    }
    out.push(match (AnyMethod::ZOrder { sample_fraction: 1.0 }).compute(&params, pts) {
        Ok(o) => ok(PAIR_NAMES[12], tree, o.grid.values(), scan.values()),
        Err(e) => fail(PAIR_NAMES[12], e.to_string()),
    });

    // --- aKDE against its proven absolute bound --------------------------
    let mut aux = SplitMix64(case.aux_seed());
    let epsilon = match aux.below(3) {
        0 => 0.0,
        1 => 1e-6,
        _ => 1e-3,
    };
    out.push(match (AnyMethod::Akde { epsilon }).compute(&params, pts) {
        Ok(o) => {
            let peak = scan.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            let policy = Policy::akde_bound(case.weight, pts.len(), epsilon, peak, term);
            ok(PAIR_NAMES[13], policy, o.grid.values(), scan.values())
        }
        Err(e) => fail(PAIR_NAMES[13], e.to_string()),
    });

    // --- STKDV ------------------------------------------------------------
    out.extend(run_stkdv(case, &params, &mut aux));

    // --- incremental pan vs full recompute --------------------------------
    out.push(run_pan(case, &params, &mut aux));

    // --- NKDV forward augmentation vs Dijkstra reference -------------------
    out.push(run_nkdv(case, &mut aux));

    // --- stitched tiles vs the monolithic sweep (bitwise) ------------------
    // Tile decomposition must be pure memory movement: for every tile
    // size — including single-pixel tiles and tiles smaller than the
    // bandwidth — the stitched raster is the identical float program.
    let tile_size = case.tile_size();
    out.push(
        match (
            kdv_core::tile::compute_stitched(&params, pts, tile_size),
            sweep_bucket::compute(&params, pts),
        ) {
            (Ok(t), Ok(m)) => ok(PAIR_NAMES[18], Policy::Bitwise, t.values(), m.values()),
            (t, m) => fail(
                PAIR_NAMES[18],
                format!("tile_size={tile_size}: {}", two_errors(t.err(), m.err())),
            ),
        },
    );

    // --- instrumented sweep vs plain (bitwise) -----------------------------
    // Observability must be observation-only: the same bucket sweep with
    // the span recorder live cannot change a single output bit. The spans
    // this case records are discarded — only the densities matter here.
    out.push({
        let plain = sweep_bucket::compute(&params, pts);
        let was_enabled = kdv_obs::enabled();
        kdv_obs::set_enabled(true);
        let traced = sweep_bucket::compute(&params, pts);
        kdv_obs::set_enabled(was_enabled);
        kdv_obs::span::flush_thread();
        kdv_obs::span::clear();
        match (traced, plain) {
            (Ok(t), Ok(p)) => ok(PAIR_NAMES[19], Policy::Bitwise, t.values(), p.values()),
            (t, p) => fail(PAIR_NAMES[19], two_errors(t.err(), p.err())),
        }
    });

    // --- SIMD lane layer vs forced-scalar twins (bitwise) ------------------
    // The f64x4 emit and envelope-fill paths mirror the scalar expression
    // trees op for op, so forcing the dispatch either way must produce the
    // identical raster. On hardware without the vector ISA `with_mode`
    // clamps Vector to Scalar and the pairs hold trivially — that clamp is
    // itself part of the contract (never execute an unsupported path).
    for (idx, engine) in [(20usize, Method::SlamBucket), (21, Method::SlamSort)] {
        out.push({
            let scalar =
                with_mode(SimdMode::Scalar, || KdvEngine::new(engine).compute(&params, pts));
            let vector =
                with_mode(SimdMode::Vector, || KdvEngine::new(engine).compute(&params, pts));
            match (vector, scalar) {
                (Ok(v), Ok(s)) => ok(PAIR_NAMES[idx], Policy::Bitwise, v.values(), s.values()),
                (v, s) => fail(PAIR_NAMES[idx], two_errors(v.err(), s.err())),
            }
        });
    }
    out.push({
        let fill_rows = |mode: SimdMode| {
            with_mode(mode, || {
                let index = BandIndex::build(pts);
                let mut buf = EnvelopeBuffer::for_points(pts.len());
                let mut flat = Vec::new();
                for row in 0..params.grid.res_y {
                    let k = params.grid.pixel_center(0, row).y;
                    let band = index.band(case.bandwidth, k);
                    for iv in buf.fill_band(&index, band, case.bandwidth, k) {
                        flat.extend_from_slice(&[iv.lb, iv.ub, iv.point.x, iv.point.y]);
                    }
                }
                flat
            })
        };
        let scalar = fill_rows(SimdMode::Scalar);
        let vector = fill_rows(SimdMode::Vector);
        ok(PAIR_NAMES[22], Policy::Bitwise, &vector, &scalar)
    });

    // --- coreset overview tier vs its certified advertisement --------------
    out.extend(run_coreset(case, &params, &scan));

    // --- streaming ingestion vs rebuild-from-scratch -----------------------
    out.extend(run_streaming(case, &params));

    debug_assert_eq!(out.len(), PAIR_NAMES.len());
    out
}

/// The four approximate-overview pairs. The first two build a coreset
/// directly (grid and sort constructions, the case grid as the sole
/// registered evaluation grid) and hold the weighted sweep over it to the
/// *achieved* ε the builder certified — [`Policy::ErrorBound`] is the one
/// policy whose budget is produced by the system under test, so these
/// pairs are really checking that the certificate itself is honest
/// against an independent oracle (SCAN, not the bucket sweep the builder
/// measured with; the builder's `2⁻²⁴·scale` float slack is what absorbs
/// that engine swap). The last two stand up a two-level tile server whose
/// zoom 0 is coreset-served (method and ε target drawn from the case's
/// generator dimension) and whose zoom 1 is exact: the served overview
/// must respect the advertised ε end to end through tiling and caching,
/// and the deep zoom must remain bitwise-equal to the monolithic sweep —
/// the approximation must never bleed across the tier boundary.
fn run_coreset(
    case: &CaseSpec,
    params: &KdvParams,
    scan: &kdv_core::DensityGrid,
) -> Vec<PairResult> {
    let mut out = Vec::with_capacity(4);
    let rel = case.coreset_epsilon_rel();
    let scale =
        kdv_coreset::density_scale(case.kernel, case.bandwidth, case.weight, case.points.len());

    for (idx, method) in [(23usize, CoresetMethod::Grid), (24, CoresetMethod::Sort)] {
        let spec = CoresetSpec {
            method,
            target_epsilon: rel * scale,
            kernel: case.kernel,
            bandwidth: case.bandwidth,
            weight: case.weight,
            seed: case.aux_seed(),
            eval_grids: vec![params.grid],
        };
        out.push(match kdv_coreset::build(&spec, &case.points) {
            Ok(cs) => match compute_weighted(params, &cs.points, &cs.weights) {
                Ok(g) => ok(
                    PAIR_NAMES[idx],
                    Policy::ErrorBound { epsilon: cs.epsilon },
                    g.values(),
                    scan.values(),
                ),
                Err(e) => fail(PAIR_NAMES[idx], e.to_string()),
            },
            Err(e) => fail(PAIR_NAMES[idx], e.to_string()),
        });
    }

    // two-level server over the case raster: zoom 0 (the case grid) is
    // the coreset tier, zoom 1 the exact tier
    let method = match case.coreset_method().parse::<CoresetMethod>() {
        Ok(m) => m,
        Err(e) => {
            out.push(fail(PAIR_NAMES[25], e.to_string()));
            out.push(fail(PAIR_NAMES[26], e.to_string()));
            return out;
        }
    };
    let server = PyramidSpec::new(case.region, case.tile_size(), case.res_x, case.res_y, 1)
        .and_then(|pyramid| {
            TileServer::with_overview_coreset(
                pyramid,
                ServeConfig {
                    dataset: case.aux_seed(),
                    kernel: case.kernel,
                    bandwidth: case.bandwidth,
                    weight: case.weight,
                },
                case.points.clone(),
                1 << 20,
                2,
                OverviewConfig {
                    max_zoom: 0,
                    method,
                    target_rel_epsilon: rel,
                    seed: case.aux_seed(),
                },
            )
        });
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            out.push(fail(PAIR_NAMES[25], format!("server: {e}")));
            out.push(fail(PAIR_NAMES[26], format!("server: {e}")));
            return out;
        }
    };

    let vp0 = Viewport { zoom: 0, px: 0, py: 0, width: case.res_x, height: case.res_y };
    out.push(match server.serve_viewport_tiered(&vp0, 2) {
        Ok((g, _, info)) if info.tier == TileTier::Coreset => ok(
            PAIR_NAMES[25],
            Policy::ErrorBound { epsilon: info.epsilon.unwrap_or(0.0) },
            g.values(),
            scan.values(),
        ),
        Ok((_, _, info)) => fail(PAIR_NAMES[25], format!("zoom 0 reported tier {:?}", info.tier)),
        Err(e) => fail(PAIR_NAMES[25], e.to_string()),
    });

    let vp1 = Viewport { zoom: 1, px: 0, py: 0, width: 2 * case.res_x, height: 2 * case.res_y };
    let deep = server.pyramid().level_params(1, case.kernel, case.bandwidth, case.weight);
    out.push(
        match (server.serve_viewport_tiered(&vp1, 2), sweep_bucket::compute(&deep, &case.points)) {
            (Ok((g, _, info)), Ok(mono)) if info.tier == TileTier::Exact => {
                ok(PAIR_NAMES[26], Policy::Bitwise, g.values(), mono.values())
            }
            (Ok((_, _, info)), Ok(_)) => {
                fail(PAIR_NAMES[26], format!("zoom 1 reported tier {:?}", info.tier))
            }
            (g, m) => fail(PAIR_NAMES[26], two_errors(g.err(), m.err())),
        },
    );
    out
}

/// The three streaming pairs: a live tile server ingests a case-derived
/// batch ladder (k ∈ {1, 16, 1024} appends, then an expiration wave) and
/// every post-mutation serve must be **bitwise-equal** to a cold
/// rebuild-from-scratch of the same snapshot — at every pyramid zoom,
/// through the cache's patch path (the server is warmed before each
/// mutation, so patching is what's actually on trial, not a disguised
/// recompute). The third pair compacts a coreset-backed overview mid
/// stream: the served zoom 0 must respect the advertised ε against an
/// independent SCAN of the then-live point set.
fn run_streaming(case: &CaseSpec, params: &KdvParams) -> Vec<PairResult> {
    let k = case.append_batch();
    let mut rng = SplitMix64(case.aux_seed() ^ 0x57AE);
    let appended: Vec<kdv_core::Point> = (0..k)
        .map(|_| {
            kdv_core::Point::new(
                case.region.min_x + rng.f64() * (case.region.max_x - case.region.min_x),
                case.region.min_y + rng.f64() * (case.region.max_y - case.region.min_y),
            )
        })
        .collect();
    let streaming_pairs = &PAIR_NAMES[27..30];

    let pyramid = match PyramidSpec::new(case.region, case.tile_size(), case.res_x, case.res_y, 1) {
        Ok(p) => p,
        Err(e) => {
            return streaming_pairs.iter().map(|pair| fail(pair, format!("pyramid: {e}"))).collect()
        }
    };
    let serve_config = ServeConfig {
        dataset: case.aux_seed(),
        kernel: case.kernel,
        bandwidth: case.bandwidth,
        weight: case.weight,
    };
    let server = LiveTileServer::new(
        pyramid,
        serve_config,
        LiveConfig::default(),
        case.points.clone(),
        1 << 20,
        2,
    );
    let viewports = [
        Viewport { zoom: 0, px: 0, py: 0, width: case.res_x, height: case.res_y },
        Viewport { zoom: 1, px: 0, py: 0, width: 2 * case.res_x, height: 2 * case.res_y },
    ];

    // Serves every zoom of the live server and the cold rebuild of the
    // same snapshot, concatenated for one bitwise comparison.
    let serve_all_zooms = |pair: &'static str| -> PairResult {
        let snapshot = server.snapshot();
        let mut got = Vec::new();
        let mut reference = Vec::new();
        for vp in &viewports {
            let level = pyramid.level_params(vp.zoom, case.kernel, case.bandwidth, case.weight);
            match (server.serve_viewport(vp, 2), rebuild_grid(&level, &snapshot)) {
                (Ok((g, _)), Ok(r)) => {
                    got.extend_from_slice(g.values());
                    reference.extend_from_slice(r.values());
                }
                (g, r) => {
                    return fail(
                        pair,
                        format!("zoom {}: {}", vp.zoom, two_errors(g.err(), r.err())),
                    )
                }
            }
        }
        ok(pair, Policy::Bitwise, &got, &reference)
    };

    let mut out = Vec::with_capacity(3);
    // warm every band at generation 0, then append (two batches when the
    // ladder allows, so the patch folds a multi-batch suffix)
    let warm: Vec<_> = viewports.iter().map(|vp| server.serve_viewport(vp, 2)).collect();
    if let Some(Err(e)) = warm.into_iter().find(|r| r.is_err()) {
        return streaming_pairs.iter().map(|pair| fail(pair, format!("warm serve: {e}"))).collect();
    }
    if k > 1 {
        server.append(&appended[..k / 2]);
        server.append(&appended[k / 2..]);
    } else {
        server.append(&appended);
    }
    out.push(serve_all_zooms(PAIR_NAMES[27]));

    // expire a third of the live set (at least one point) and re-serve
    let expire = (server.live_len() / 3).max(1);
    server.expire_oldest(expire);
    out.push(serve_all_zooms(PAIR_NAMES[28]));

    // the compacted-overview pair: coreset zoom 0, exact zoom 1
    out.push(run_streaming_overview(case, params, &pyramid, serve_config, &appended));
    out
}

/// The compacted-overview pair: ingest the append ladder into a
/// coreset-backed live server, compact (epoch rebase + coreset rebuild
/// from the then-live set), and hold the served zoom 0 to its advertised
/// ε against an independent SCAN of the live points.
fn run_streaming_overview(
    case: &CaseSpec,
    params: &KdvParams,
    pyramid: &PyramidSpec,
    serve_config: ServeConfig,
    appended: &[kdv_core::Point],
) -> PairResult {
    let pair = PAIR_NAMES[29];
    let method = match case.coreset_method().parse::<CoresetMethod>() {
        Ok(m) => m,
        Err(e) => return fail(pair, e.to_string()),
    };
    let server = match LiveTileServer::with_overview_coreset(
        *pyramid,
        serve_config,
        LiveConfig::default(),
        case.points.clone(),
        1 << 20,
        2,
        OverviewConfig {
            max_zoom: 0,
            method,
            target_rel_epsilon: case.coreset_epsilon_rel(),
            seed: case.aux_seed(),
        },
    ) {
        Ok(s) => s,
        Err(e) => return fail(pair, format!("server: {e}")),
    };
    server.append(appended);
    server.compact();
    let live = server.live_points();
    let vp0 = Viewport { zoom: 0, px: 0, py: 0, width: case.res_x, height: case.res_y };
    match server.serve_viewport_tiered(&vp0, 2) {
        Ok((g, _, info)) if info.tier == TileTier::Coreset => {
            match AnyMethod::Scan.compute(params, &live) {
                Ok(oracle) => ok(
                    pair,
                    Policy::ErrorBound { epsilon: info.epsilon.unwrap_or(0.0) },
                    g.values(),
                    oracle.grid.values(),
                ),
                Err(e) => fail(pair, format!("live SCAN oracle: {e}")),
            }
        }
        Ok((_, _, info)) => fail(pair, format!("zoom 0 reported tier {:?}", info.tier)),
        Err(e) => fail(pair, e.to_string()),
    }
}

fn two_errors(a: Option<kdv_core::KdvError>, b: Option<kdv_core::KdvError>) -> String {
    match (a, b) {
        (Some(a), Some(b)) => format!("engine: {a}; oracle: {b}"),
        (Some(a), None) => format!("engine: {a}"),
        (None, Some(b)) => format!("oracle: {b}"),
        (None, None) => unreachable!("two_errors called with two successes"),
    }
}

/// Per-point weights in `[-1, 4)` — negative weights are legal (period
/// differencing) and must round-trip through the sweep.
fn derive_weights(case: &CaseSpec) -> Vec<f64> {
    let mut rng = SplitMix64(case.aux_seed() ^ 0x77ED);
    case.points.iter().map(|_| rng.f64() * 5.0 - 1.0).collect()
}

fn run_stkdv(case: &CaseSpec, params: &KdvParams, aux: &mut SplitMix64) -> Vec<PairResult> {
    let temporal_kernel = match aux.below(3) {
        0 => TemporalKernel::Uniform,
        1 => TemporalKernel::Triangular,
        _ => TemporalKernel::Epanechnikov,
    };
    let records: Vec<EventRecord> = case
        .points
        .iter()
        .map(|&point| EventRecord { point, timestamp: aux.below(1_000) as i64, category: 0 })
        .collect();
    let config = StKdvConfig {
        params: *params,
        frames: FrameSpec::new(0, 400, 3),
        temporal_bandwidth: 350,
        temporal_kernel,
    };

    let sequential = compute_stkdv(&config, &records);
    let scan_pair = match &sequential {
        Ok(frames) => {
            // oracle: per frame, weight every record by the temporal
            // kernel and evaluate by direct summation
            let mut got = Vec::new();
            let mut reference = Vec::new();
            let mut term = 0.0_f64;
            for frame in frames {
                let mut pts = Vec::new();
                let mut ws = Vec::new();
                for r in &records {
                    let u =
                        (r.timestamp - frame.time).abs() as f64 / config.temporal_bandwidth as f64;
                    let w = config.temporal_kernel.eval(u);
                    if w > 0.0 {
                        pts.push(r.point);
                        ws.push(w);
                    }
                }
                // worst per-frame term scale Σ|w_eff|·K(0)
                term = term
                    .max(ws.iter().sum::<f64>() * unit_kernel_peak(case.kernel, case.bandwidth));
                let direct = weighted_scan(params, &pts, &ws);
                got.extend_from_slice(frame.grid.values());
                reference.extend_from_slice(direct.values());
            }
            ok(PAIR_NAMES[14], Policy::sweep_exact(term), &got, &reference)
        }
        Err(e) => fail(PAIR_NAMES[14], e.to_string()),
    };

    let parallel_pair = match (&sequential, compute_stkdv_parallel(&config, &records, 3)) {
        (Ok(seq), Ok(par)) => {
            let got: Vec<f64> = par.iter().flat_map(|f| f.grid.values().iter().copied()).collect();
            let reference: Vec<f64> =
                seq.iter().flat_map(|f| f.grid.values().iter().copied()).collect();
            ok(PAIR_NAMES[15], Policy::Bitwise, &got, &reference)
        }
        (Err(e), _) => fail(PAIR_NAMES[15], format!("sequential: {e}")),
        (_, Err(e)) => fail(PAIR_NAMES[15], format!("parallel: {e}")),
    };
    vec![scan_pair, parallel_pair]
}

fn run_pan(case: &CaseSpec, params: &KdvParams, aux: &mut SplitMix64) -> PairResult {
    // previous viewport: the case region shifted down by a whole number of
    // pixel rows, so pan_render takes the copy-overlap fast path
    let dj = 1 + aux.below(3) as i64;
    let gap_y = (case.region.max_y - case.region.min_y) / case.res_y as f64;
    let delta = dj as f64 * gap_y;
    let prev_region = Rect::new(
        case.region.min_x,
        case.region.min_y - delta,
        case.region.max_x,
        case.region.max_y - delta,
    );
    let prev_spec = match kdv_core::GridSpec::new(prev_region, case.res_x, case.res_y) {
        Ok(s) => s,
        Err(e) => return fail(PAIR_NAMES[16], format!("prev spec: {e}")),
    };
    let mut prev_params = *params;
    prev_params.grid = prev_spec;
    match (
        rao::compute_bucket(&prev_params, &case.points),
        rao::compute_bucket(params, &case.points),
    ) {
        (Ok(prev), Ok(full)) => {
            match pan_render(&prev, &prev_spec, params, &case.points) {
                Ok((inc, _recomputed)) => {
                    // the copied rows' pixel centres were derived in the
                    // previous viewport's float frame, so this comparison
                    // carries c·ε/b of grid-derivation conditioning on top
                    // of two independent sweep budgets (pan_exact)
                    let term = case.weight.abs()
                        * case.points.len() as f64
                        * unit_kernel_peak(case.kernel, case.bandwidth);
                    let policy = Policy::pan_exact(case.coord_magnitude(), case.bandwidth, term);
                    if case.kernel == kdv_core::KernelType::Uniform {
                        compare_pan_uniform(case, params, &prev_spec, dj, policy, &inc, &full)
                    } else {
                        ok(PAIR_NAMES[16], policy, inc.values(), full.values())
                    }
                }
                Err(e) => fail(PAIR_NAMES[16], e.to_string()),
            }
        }
        (p, f) => fail(PAIR_NAMES[16], two_errors(p.err(), f.err())),
    }
}

/// Pan comparison for the uniform kernel, whose support-boundary
/// *discontinuity* breaks a purely scaled policy: the copied rows' pixel
/// centres were derived in the previous viewport's float frame and differ
/// from the recompute's by `O(c·ε)`, so a point grazing `dist = b` can
/// flip membership between the two frames and legitimately shift the
/// density by a whole term `w·K(0)` (found by the soak fuzzer at seed
/// 66246, corpus case `seed-66246-uniform-membership-flip`).
///
/// Pixels with a possible flip are excluded from the scaled comparison
/// and checked against the whole-term bound `flips · w·K(0)` instead; an
/// excess there falls through to the honest (failing) full comparison.
fn compare_pan_uniform(
    case: &CaseSpec,
    params: &KdvParams,
    prev_spec: &kdv_core::GridSpec,
    dj: i64,
    policy: Policy,
    inc: &kdv_core::DensityGrid,
    full: &kdv_core::DensityGrid,
) -> PairResult {
    let b2 = case.bandwidth * case.bandwidth;
    // membership slack: dist² at coordinate magnitude c carries O(c²·ε)
    // of rounding, as does b²
    let c = case.coord_magnitude();
    let slack = 32.0 * f64::EPSILON * (c * c).max(b2);
    let flip_cost = case.weight.abs() * unit_kernel_peak(case.kernel, case.bandwidth);
    let full_peak = full.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let base = policy.admitted_error(full_peak);

    let mut got = Vec::new();
    let mut reference = Vec::new();
    for j in 0..case.res_y {
        for i in 0..case.res_x {
            let q_full = params.grid.pixel_center(i, j);
            // the prev-frame centre of the same geometric pixel (rows not
            // present in the previous viewport were recomputed in the
            // full frame, so their centres agree)
            let jp = j as i64 + dj;
            let q_prev = if (0..case.res_y as i64).contains(&jp) {
                prev_spec.pixel_center(i, jp as usize)
            } else {
                q_full
            };
            let flips = case
                .points
                .iter()
                .filter(|p| {
                    let s_full = q_full.dist_sq(p) - b2;
                    let s_prev = q_prev.dist_sq(p) - b2;
                    (s_full <= 0.0) != (s_prev <= 0.0) || s_full.abs().min(s_prev.abs()) <= slack
                })
                .count();
            if flips == 0 {
                got.push(inc.get(i, j));
                reference.push(full.get(i, j));
            } else if (inc.get(i, j) - full.get(i, j)).abs() > flips as f64 * flip_cost + base {
                // a flip can't explain this much — report the honest
                // failing comparison over the whole grid
                return ok(PAIR_NAMES[16], policy, inc.values(), full.values());
            }
        }
    }
    ok(PAIR_NAMES[16], policy, &got, &reference)
}

fn run_nkdv(case: &CaseSpec, aux: &mut SplitMix64) -> PairResult {
    let network = RoadNetwork::grid_city(
        3 + aux.below(3) as usize,
        3 + aux.below(2) as usize,
        80.0 + aux.f64() * 80.0,
        0.9,
        aux.next_u64() | 1,
    );
    if network.num_edges() == 0 {
        return fail(PAIR_NAMES[17], "generated network has no edges".into());
    }
    let events: Vec<NetPosition> = (0..aux.below(25))
        .map(|_| {
            let edge = aux.below(network.num_edges() as u64) as u32;
            let (_, _, len) = network.edge_info(edge);
            NetPosition { edge, offset: aux.f64() * len }
        })
        .collect();
    let params = NkdvParams {
        kernel: case.kernel,
        bandwidth: 60.0 + aux.f64() * 250.0,
        lixel_length: 12.0 + aux.f64() * 30.0,
        weight: 1.0 / events.len().max(1) as f64,
    };
    match (compute_nkdv(&network, &params, &events), compute_nkdv_naive(&network, &params, &events))
    {
        (Ok(fast), Ok(slow)) => {
            let term = params.weight.abs()
                * events.len() as f64
                * unit_kernel_peak(params.kernel, params.bandwidth);
            ok(PAIR_NAMES[17], Policy::network_exact(term), fast.values(), slow.values())
        }
        (f, s) => fail(PAIR_NAMES[17], two_errors(f.err(), s.err())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pair_reports_on_a_plain_case() {
        let case = CaseSpec::generate(4); // ordinary uniform cloud
        let results = run_case(&case);
        assert_eq!(results.len(), PAIR_NAMES.len());
        for r in &results {
            assert!(r.pass(), "{}: {:?} {:?}", r.pair, r.comparison, r.error);
        }
    }

    #[test]
    fn empty_input_conforms_everywhere() {
        let mut case = CaseSpec::generate(5);
        case.points.clear();
        for r in run_case(&case) {
            assert!(r.pass(), "{}: {:?} {:?}", r.pair, r.comparison, r.error);
        }
    }

    #[test]
    fn run_case_is_deterministic() {
        let case = CaseSpec::generate(11);
        let a = run_case(&case);
        let b = run_case(&case);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pair, y.pair);
            assert_eq!(x.pass(), y.pass());
            if let (Some(cx), Some(cy)) = (x.comparison, y.comparison) {
                assert_eq!(cx.max_abs_err.to_bits(), cy.max_abs_err.to_bits(), "{}", x.pair);
            }
        }
    }
}
