//! The single tolerance policy shared by every conformance check.
//!
//! Before this module existed every test picked its own magic constant
//! (`1e-9` for sweeps, `1e-9 + 1e-12·(160/b)⁴` for the tree baselines,
//! `1e-12` for NKDV, …). Those numbers were all rediscovering the same two
//! facts, so the policy states them once:
//!
//! 1. **Exact engines drift by reassociation only.** An exact engine
//!    computes the same sum as the oracle with the terms reassociated
//!    (sweep aggregates, tree partial sums, transposes). Each
//!    reassociation is worth a few ULPs of the *peak* density, so the
//!    budget is expressed in scaled ULPs:
//!    `|got − ref| ≤ ulps · ε · max|ref|` with `ε = f64::EPSILON`.
//! 2. **Conditioning multiplies the budget.** Engines that evaluate far
//!    from the data centroid (the tree baselines work in one global
//!    recentred frame) lose up to `(c/b)⁴` of precision for the quartic
//!    kernel, where `c` is the coordinate magnitude and `b` the bandwidth
//!    — the very cancellation the PR 1 regression pinned. Their budget
//!    carries that factor explicitly instead of hiding it in a constant.
//!
//! 3. **The error scale is the summed term magnitude, not the output.**
//!    Every engine sums terms of magnitude up to `|wᵢ|·K(0)`; rounding is
//!    proportional to that *term scale* `Σ|wᵢ|·K(0)` even when the output
//!    itself is tiny. A pixel grazing the kernel support boundary
//!    (`dist ≈ b`) has a true density near zero, but both engine and
//!    oracle evaluate a cancelling expression whose absolute error is
//!    `O(ε · term scale)` — no evaluation order can do better. Scaled
//!    budgets therefore floor the reference peak at the term scale
//!    (found by the soak fuzzer at seed 30121, corpus case
//!    `seed-30121-support-grazing`).
//!
//! Engines that run the *identical* floating-point program as their
//! reference (parallel vs sequential, banded vs full-scan extraction,
//! multi-bandwidth vs solo runs) get no budget at all: [`Policy::Bitwise`].
//! Approximate engines (aKDE) are checked against their *proven* absolute
//! error bound, not against a similarity heuristic.

use kdv_core::KernelType;

/// Relative budget of an exact sweep engine vs the scan oracle, in ULPs of
/// the peak density: `2²² · ε ≈ 9.3e-10` — the old flat `1e-9`, now with
/// its derivation attached (a few thousand reassociated terms, each worth
/// a handful of ULPs, against the peak).
pub const SWEEP_ULPS: f64 = (1u64 << 22) as f64;

/// Extra ULP budget per unit of quartic conditioning `(c/b)⁴` for engines
/// evaluating in one global recentred frame (tree baselines). `2¹⁴ · ε ≈
/// 3.6e-12` per unit — covers the old `1e-12·(160/b)⁴` with ~4× headroom
/// for regions whose half-diagonal exceeds the old tests' 160-unit span.
pub const TREE_COND_ULPS: f64 = (1u64 << 14) as f64;

/// Relative budget for the NKDV forward augmentation vs the per-lixel
/// Dijkstra reference: both sum identical kernel values in different
/// orders, so the budget is small — `2¹³ · ε ≈ 1.8e-12` of the peak.
pub const NETWORK_ULPS: f64 = (1u64 << 13) as f64;

/// Extra ULP budget per unit of `c/b` for comparisons between two sweeps
/// whose pixel grids were derived in *different* float frames (incremental
/// pan vs full recompute): a pixel centre at coordinate magnitude `c`
/// carries `c·ε` of derivation rounding, and the kernel slope turns that
/// into `O(c·ε/b)` of relative density error. Found by the soak fuzzer at
/// `c = 4e6, b = 0.79` (corpus case `seed-1688-pan-grid-derivation`).
pub const PAN_COND_ULPS: f64 = 16.0;

/// The unnormalized kernel's peak value `K(0)` (see
/// [`KernelType::eval`] at distance zero): the magnitude of a single
/// summed term per unit weight, used as the term-scale floor of the
/// scaled policies.
pub fn unit_kernel_peak(kernel: KernelType, bandwidth: f64) -> f64 {
    match kernel {
        KernelType::Uniform => 1.0 / bandwidth,
        KernelType::Epanechnikov | KernelType::Quartic => 1.0,
    }
}

/// How closely an engine's output must match its oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// The engine runs the identical floating-point program as the
    /// reference; any differing bit is a bug.
    Bitwise,
    /// Exact up to reassociation:
    /// `|got − ref| ≤ ulps · ε · max(max|ref|, floor)`.
    ScaledUlps {
        /// Budget in ULPs of the reference peak magnitude.
        ulps: f64,
        /// Term-scale floor `Σ|wᵢ|·K(0)` — the magnitude of the summed
        /// terms, below which the reference peak understates the
        /// unavoidable rounding (support-boundary grazing).
        floor: f64,
    },
    /// Approximate with a proven bound: `|got − ref| ≤ bound` everywhere.
    AbsoluteBound {
        /// The engine's proven absolute error bound.
        bound: f64,
    },
    /// Approximate with a **certified advertised bound**: the engine
    /// itself published `ε` alongside its output (a coreset's achieved
    /// sup-error certificate) and the oracle holds it to its own
    /// advertisement: `|got − ref| ≤ ε` everywhere.
    ///
    /// The contract differs from the exact policies in kind, not just in
    /// magnitude. `Bitwise`/`ScaledUlps` bound *rounding* of the same
    /// sum — their budgets derive from `f64::EPSILON` and the term scale,
    /// and shrink as precision grows. `ErrorBound` bounds *approximation*
    /// of a different (smaller) sum — the budget is whatever the engine
    /// claimed when it built the approximation, so a pass means the
    /// advertisement is honest, not that the bits are close. Unlike
    /// `AbsoluteBound` (a bound the *oracle* derives from the engine's
    /// parameters), the `ErrorBound` budget is produced by the system
    /// under test, which is exactly why it needs an oracle.
    ErrorBound {
        /// The sup-error bound the engine advertised with its output.
        epsilon: f64,
    },
}

impl Policy {
    /// Policy for exact sweep engines (SLAM variants, weighted sweep,
    /// STKDV frames) against a direct-summation oracle. `term_scale` is
    /// the summed term magnitude `Σ|wᵢ|·K(0)` (see
    /// [`unit_kernel_peak`]) flooring the error scale.
    pub fn sweep_exact(term_scale: f64) -> Self {
        Policy::ScaledUlps { ulps: SWEEP_ULPS, floor: term_scale }
    }

    /// Policy for tree-based exact baselines (RQS, QUAD, full-fraction
    /// Z-order) that evaluate in one globally recentred frame: the base
    /// sweep budget plus the quartic conditioning term `(c/b)⁴`, where
    /// `c` is the region half-diagonal (the farthest a query point sits
    /// from the shared frame origin).
    pub fn tree_exact(region_half_diagonal: f64, bandwidth: f64, term_scale: f64) -> Self {
        let cond = (region_half_diagonal / bandwidth).powi(4);
        Policy::ScaledUlps { ulps: SWEEP_ULPS + TREE_COND_ULPS * cond.max(1.0), floor: term_scale }
    }

    /// Policy for the NKDV forward augmentation vs the naive reference.
    pub fn network_exact(term_scale: f64) -> Self {
        Policy::ScaledUlps { ulps: NETWORK_ULPS, floor: term_scale }
    }

    /// Policy for incremental pan vs full recompute: both sides are exact
    /// sweeps (two budgets), plus the pixel-grid re-derivation term
    /// `c·ε/b` — the copied rows' pixel centres were computed in the
    /// previous viewport's float frame, `c` being the coordinate magnitude
    /// of the region.
    pub fn pan_exact(coord_magnitude: f64, bandwidth: f64, term_scale: f64) -> Self {
        let cond = (coord_magnitude / bandwidth).max(1.0);
        Policy::ScaledUlps { ulps: 2.0 * SWEEP_ULPS + PAN_COND_ULPS * cond, floor: term_scale }
    }

    /// Policy for aKDE: per-point kernel tolerance `ε_k` admits an
    /// absolute density error of `w · n · ε_k / 2` (see
    /// `kdv_baselines::akde`), plus one sweep budget of slack for the
    /// summation itself (floored at the term scale, like every scaled
    /// policy).
    pub fn akde_bound(
        weight: f64,
        n_points: usize,
        epsilon: f64,
        ref_peak: f64,
        term_scale: f64,
    ) -> Self {
        let bound = weight.abs() * n_points as f64 * epsilon / 2.0;
        let slack = SWEEP_ULPS * f64::EPSILON * ref_peak.abs().max(term_scale).max(1e-300);
        Policy::AbsoluteBound { bound: bound + slack }
    }

    /// The admitted absolute error for a reference with the given peak
    /// magnitude (`∞` never happens: every policy is finite).
    pub fn admitted_error(&self, ref_peak: f64) -> f64 {
        match self {
            Policy::Bitwise => 0.0,
            Policy::ScaledUlps { ulps, floor } => {
                ulps * f64::EPSILON * ref_peak.abs().max(*floor).max(1e-300)
            }
            Policy::AbsoluteBound { bound } => *bound,
            Policy::ErrorBound { epsilon } => *epsilon,
        }
    }
}

/// Outcome of comparing an engine's output against its oracle.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Largest absolute elementwise difference.
    pub max_abs_err: f64,
    /// `max_abs_err` divided by the reference peak magnitude (floored at
    /// `1e-300` so all-zero oracles don't divide by zero).
    pub max_scaled_err: f64,
    /// The absolute error the policy admits for this reference.
    pub admitted: f64,
    /// Whether every element matched bit-for-bit.
    pub bitwise: bool,
    /// Whether the comparison satisfied the policy.
    pub pass: bool,
}

/// Compares `got` against `reference` under `policy`.
///
/// Length mismatches and non-finite values in `got` always fail — a NaN
/// grid is never conformant, whatever the policy.
pub fn compare(policy: Policy, got: &[f64], reference: &[f64]) -> Comparison {
    if got.len() != reference.len() || got.iter().any(|v| !v.is_finite()) {
        return Comparison {
            max_abs_err: f64::INFINITY,
            max_scaled_err: f64::INFINITY,
            admitted: 0.0,
            bitwise: false,
            pass: false,
        };
    }
    let ref_peak = reference.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let scale = ref_peak.max(1e-300);
    let mut max_abs = 0.0_f64;
    let mut bitwise = true;
    for (a, b) in got.iter().zip(reference) {
        if a.to_bits() != b.to_bits() {
            bitwise = false;
        }
        max_abs = max_abs.max((a - b).abs());
    }
    let admitted = policy.admitted_error(ref_peak);
    let pass = match policy {
        Policy::Bitwise => bitwise,
        _ => max_abs <= admitted,
    };
    Comparison { max_abs_err: max_abs, max_scaled_err: max_abs / scale, admitted, bitwise, pass }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_rejects_one_ulp() {
        let a = [1.0, 2.0, 3.0];
        let mut b = a;
        assert!(compare(Policy::Bitwise, &a, &b).pass);
        b[1] = f64::from_bits(b[1].to_bits() + 1);
        let c = compare(Policy::Bitwise, &a, &b);
        assert!(!c.pass && !c.bitwise);
        // ...but the sweep policy accepts it
        assert!(compare(Policy::sweep_exact(0.0), &a, &b).pass);
    }

    #[test]
    fn sweep_budget_matches_the_old_flat_constant() {
        // the historic flat tolerance was max_scaled_err < 1e-9
        let admitted = Policy::sweep_exact(0.0).admitted_error(1.0);
        assert!(admitted > 5e-10 && admitted < 1e-9, "budget {admitted}");
    }

    #[test]
    fn tree_budget_grows_with_conditioning() {
        let tight = Policy::tree_exact(80.0, 80.0, 0.0).admitted_error(1.0);
        let loose = Policy::tree_exact(80.0, 1.0, 0.0).admitted_error(1.0);
        assert!(loose > tight * 1e4, "conditioning must dominate: {tight} vs {loose}");
    }

    #[test]
    fn pan_budget_scales_with_coordinate_magnitude() {
        // near the origin the pan budget is just two sweep budgets...
        let near = Policy::pan_exact(100.0, 50.0, 0.0).admitted_error(1.0);
        assert!(near < 3.0 * SWEEP_ULPS * f64::EPSILON, "near-origin budget {near}");
        // ...but the seed-1688 corpus case (c = 4e6, b ≈ 0.79, observed
        // scaled error 9.7e-10) must fit inside it with headroom
        let far = Policy::pan_exact(4.0e6, 0.79, 0.0).admitted_error(1.0);
        assert!(far > 9.8e-10, "seed-1688 error must fit: {far}");
        assert!(far < 1e-6, "budget must stay tight: {far}");
    }

    #[test]
    fn term_scale_floor_admits_grazing_noise() {
        // the seed-30121 shape: reference peak ~1e-15 (every pixel grazes
        // the support boundary), term scale ~1.7 (one weight-1.7 point,
        // K(0) = 1), observed engine disagreement ~3.5e-19 — far above a
        // peak-scaled budget but far below ε·(term scale)
        let peak_scaled = Policy::ScaledUlps { ulps: SWEEP_ULPS, floor: 0.0 };
        assert!(peak_scaled.admitted_error(1e-15) < 3.5e-19);
        let floored = Policy::sweep_exact(1.7);
        assert!(floored.admitted_error(1e-15) > 3.5e-19);
        // a healthy peak is unaffected by a smaller floor
        assert_eq!(
            Policy::sweep_exact(0.5).admitted_error(2.0),
            Policy::sweep_exact(0.0).admitted_error(2.0)
        );
    }

    #[test]
    fn unit_kernel_peak_matches_eval_at_distance_zero() {
        use kdv_core::Point;
        let p = Point::new(3.0, 4.0);
        for kernel in KernelType::ALL {
            for b in [0.5, 7.0, 300.0] {
                assert_eq!(unit_kernel_peak(kernel, b), kernel.eval(&p, &p, b));
            }
        }
    }

    #[test]
    fn nan_output_never_passes() {
        let r = [0.0, 0.0];
        let g = [0.0, f64::NAN];
        for p in
            [Policy::Bitwise, Policy::sweep_exact(0.0), Policy::AbsoluteBound { bound: f64::MAX }]
        {
            assert!(!compare(p, &g, &r).pass);
        }
        // length mismatch likewise
        assert!(!compare(Policy::sweep_exact(0.0), &[0.0], &r).pass);
    }

    #[test]
    fn absolute_bound_is_independent_of_peak() {
        let r = [100.0, 0.0];
        let g = [100.5, 0.4];
        assert!(compare(Policy::AbsoluteBound { bound: 0.5 }, &g, &r).pass);
        assert!(!compare(Policy::AbsoluteBound { bound: 0.3 }, &g, &r).pass);
    }

    #[test]
    fn error_bound_holds_the_engine_to_its_advertisement() {
        let r = [10.0, 0.0, -3.0];
        let g = [10.2, -0.1, -2.9];
        // the advertised ε admits the deviation...
        assert!(compare(Policy::ErrorBound { epsilon: 0.25 }, &g, &r).pass);
        // ...a dishonest (too small) advertisement fails
        let c = compare(Policy::ErrorBound { epsilon: 0.1 }, &g, &r);
        assert!(!c.pass);
        assert!((c.max_abs_err - 0.2).abs() < 1e-12);
        // ε = 0 degenerates to an absolute-equality check (not bitwise:
        // +0.0 vs -0.0 still passes)
        assert!(compare(Policy::ErrorBound { epsilon: 0.0 }, &[0.0], &[-0.0]).pass);
        // NaN output never conforms, whatever ε says
        assert!(!compare(Policy::ErrorBound { epsilon: f64::MAX }, &[f64::NAN], &[0.0]).pass);
    }

    #[test]
    fn all_zero_reference_is_handled() {
        let r = [0.0; 4];
        let g = [0.0; 4];
        let c = compare(Policy::sweep_exact(0.0), &g, &r);
        assert!(c.pass && c.bitwise && c.max_scaled_err == 0.0);
    }
}
