//! The committed regression corpus: every mismatch the harness ever found,
//! shrunk and stored losslessly, replayed by `cargo test` and by every
//! `kdv-conformance` run.
//!
//! Format: one [`CaseSpec`] line per case (see `case.rs`); `#`-prefixed
//! lines and blank lines are comments. The file lives at
//! `crates/conformance/corpus/regressions.corpus` and is committed — a
//! corpus entry is a *permanent* test, not a cache.

use std::io::Write as _;
use std::path::Path;

use crate::case::CaseSpec;

/// Path of the committed corpus relative to this crate's manifest.
pub const CORPUS_REL_PATH: &str = "corpus/regressions.corpus";

/// The committed corpus file path (resolved at compile time, so the bin
/// and tests agree regardless of working directory).
pub fn default_corpus_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(CORPUS_REL_PATH)
}

/// Loads every case from a corpus file. A missing file is an empty corpus;
/// a malformed line is an error (a silently skipped regression is exactly
/// what this harness exists to prevent).
pub fn load(path: &Path) -> Result<Vec<CaseSpec>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut cases = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let case = CaseSpec::from_line(trimmed)
            .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        cases.push(case);
    }
    Ok(cases)
}

/// Appends a case to the corpus (creating the file and its directory on
/// first use).
pub fn append(path: &Path, case: &CaseSpec) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(file, "{}", case.to_line()).map_err(|e| e.to_string())?;
    Ok(())
}

/// Greedily shrinks a failing case: repeatedly applies the simplest
/// transformation that keeps `is_failing` true, until none does (or the
/// probe budget runs out). Transformations only ever remove points or
/// shrink the raster, so the result stays a valid case.
pub fn shrink(case: &CaseSpec, mut is_failing: impl FnMut(&CaseSpec) -> bool) -> CaseSpec {
    let mut current = case.clone();
    let mut budget = 400usize;
    loop {
        let mut candidates: Vec<CaseSpec> = Vec::new();
        let n = current.points.len();
        // big bites first: halves of the point set
        if n > 1 {
            let mut first = current.clone();
            first.points.truncate(n / 2);
            candidates.push(first);
            let mut second = current.clone();
            second.points.drain(..n / 2);
            candidates.push(second);
        }
        // single-point removals (bounded for huge clouds)
        for i in 0..n.min(40) {
            let mut c = current.clone();
            c.points.remove(i);
            candidates.push(c);
        }
        // raster shrink
        if current.res_x > 1 {
            let mut c = current.clone();
            c.res_x = (c.res_x / 2).max(1);
            candidates.push(c);
        }
        if current.res_y > 1 {
            let mut c = current.clone();
            c.res_y = (c.res_y / 2).max(1);
            candidates.push(c);
        }
        // translate everything to the origin — drops the conditioning
        // component; kept only when the failure is not about conditioning
        if current.region.min_x != 0.0 || current.region.min_y != 0.0 {
            let (dx, dy) = (current.region.min_x, current.region.min_y);
            let mut c = current.clone();
            c.region =
                kdv_core::Rect::new(0.0, 0.0, current.region.max_x - dx, current.region.max_y - dy);
            c.points =
                current.points.iter().map(|p| kdv_core::Point::new(p.x - dx, p.y - dy)).collect();
            candidates.push(c);
        }

        let mut advanced = false;
        for cand in candidates {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if is_failing(&cand) {
                current = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_round_trip_through_a_temp_file() {
        let dir = std::env::temp_dir().join("kdv-conformance-corpus-test");
        let path = dir.join("round_trip.corpus");
        let _ = std::fs::remove_file(&path);
        let a = CaseSpec::generate(42);
        let b = CaseSpec::generate(43);
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, vec![a, b]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_corpus_is_empty() {
        assert!(load(Path::new("/nonexistent/nowhere.corpus")).unwrap().is_empty());
    }

    #[test]
    fn malformed_line_is_an_error_not_a_skip() {
        let dir = std::env::temp_dir().join("kdv-conformance-corpus-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.corpus");
        std::fs::write(&path, "# comment\nv1 broken kernel=nope\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shrink_converges_to_a_minimal_failure() {
        // synthetic predicate: fails whenever any point has x > 100
        let mut case = CaseSpec::generate(2);
        case.points = (0..64).map(|i| kdv_core::Point::new(i as f64 * 4.0, 10.0)).collect();
        let shrunk = shrink(&case, |c| c.points.iter().any(|p| p.x > 100.0));
        assert!(shrunk.points.iter().any(|p| p.x > 100.0), "must still fail");
        assert!(shrunk.points.len() <= 2, "shrunk to {} points", shrunk.points.len());
        assert_eq!(shrunk.res_x, 1);
        assert_eq!(shrunk.res_y, 1);
    }

    #[test]
    fn shrink_keeps_an_unshrinkable_case_intact() {
        let case = CaseSpec::generate(7);
        // predicate only the exact original satisfies
        let original = case.clone();
        let shrunk = shrink(&case, |c| *c == original);
        assert_eq!(shrunk, original);
    }

    #[test]
    fn committed_corpus_parses() {
        // the committed file must always load — CI replays it
        let cases = load(&default_corpus_path()).unwrap();
        assert!(!cases.is_empty(), "committed corpus must not be empty");
    }
}
