//! Scott's rule bandwidth selection (Scott 1992), the paper's default.
//!
//! For a `d`-dimensional KDE with `n` points, Scott's rule is
//! `h_i = σ_i · n^{-1/(d+4)}`. The paper uses a single radially symmetric
//! bandwidth `b`; following the common GIS convention we take the
//! root-mean-square of the two per-axis bandwidths at `d = 2`
//! (`n^{-1/6}` rate).

use kdv_core::geom::Point;

/// Per-axis standard deviations of a point set (population variance).
pub fn std_devs(points: &[Point]) -> (f64, f64) {
    let n = points.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let inv = 1.0 / n as f64;
    let (mut mx, mut my) = (0.0, 0.0);
    for p in points {
        mx += p.x;
        my += p.y;
    }
    mx *= inv;
    my *= inv;
    let (mut vx, mut vy) = (0.0, 0.0);
    for p in points {
        vx += (p.x - mx) * (p.x - mx);
        vy += (p.y - my) * (p.y - my);
    }
    (f64::sqrt(vx * inv), f64::sqrt(vy * inv))
}

/// Scott's-rule bandwidth for a 2-d point set: the RMS of the per-axis
/// `σ_i · n^{-1/6}` bandwidths. Returns 0 for fewer than two points.
pub fn scott_bandwidth(points: &[Point]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let (sx, sy) = std_devs(points);
    let rate = (n as f64).powf(-1.0 / 6.0);
    let (bx, by) = (sx * rate, sy * rate);
    ((bx * bx + by * by) * 0.5).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_devs_known_values() {
        let pts = [Point::new(0.0, 10.0), Point::new(2.0, 10.0), Point::new(4.0, 10.0)];
        let (sx, sy) = std_devs(&pts);
        // var_x = ((−2)² + 0 + 2²)/3 = 8/3
        assert!((sx - (8.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(sy, 0.0);
    }

    #[test]
    fn scott_shrinks_with_n() {
        // same spread, more points ⇒ smaller bandwidth (n^{-1/6} rate)
        let small: Vec<Point> =
            (0..100).map(|i| Point::new((i % 10) as f64, (i / 10) as f64)).collect();
        let large: Vec<Point> = (0..10_000)
            .map(|i| Point::new((i % 100) as f64 / 10.0, (i / 100) as f64 / 10.0))
            .collect();
        let b_small = scott_bandwidth(&small);
        let b_large = scott_bandwidth(&large);
        assert!(b_small > 0.0 && b_large > 0.0);
        // spreads are similar (≈ unit grid 0..9.9); the n ratio is 100, so
        // bandwidths should differ by ≈ 100^(1/6) ≈ 2.15
        let ratio = b_small / b_large;
        assert!(ratio > 1.8 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(scott_bandwidth(&[]), 0.0);
        assert_eq!(scott_bandwidth(&[Point::new(1.0, 1.0)]), 0.0);
        // all identical points: zero spread ⇒ zero bandwidth
        assert_eq!(scott_bandwidth(&vec![Point::new(3.0, 3.0); 50]), 0.0);
    }

    #[test]
    fn scott_scales_with_spread() {
        let tight: Vec<Point> =
            (0..1000).map(|i| Point::new((i % 32) as f64, (i / 32) as f64)).collect();
        let wide: Vec<Point> = tight.iter().map(|p| Point::new(p.x * 10.0, p.y * 10.0)).collect();
        let r = scott_bandwidth(&wide) / scott_bandwidth(&tight);
        assert!((r - 10.0).abs() < 1e-9, "ratio {r}");
    }
}
