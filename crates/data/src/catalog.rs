//! Synthetic stand-ins for the paper's four evaluation datasets (Table 5).
//!
//! The originals are city open-data feeds (Seattle crime, Los Angeles
//! crime, New York traffic collisions, San Francisco 311 calls) that are
//! not redistributable here. Each catalog entry synthesises a feed with
//! matching *shape*: city-scale metric extent, multi-hotspot mixture,
//! street-grid alignment, category mix and the paper's relative dataset
//! sizes (SF ≈ 5× Seattle). The `scale` parameter shrinks `n` uniformly so
//! the full experiment grid finishes on a laptop; `scale = 1.0` reproduces
//! the paper's row counts.

use kdv_core::geom::{Point, Rect};

use crate::record::Dataset;
use crate::scott::scott_bandwidth;
use crate::synth::{generate, Hotspot, SynthConfig};

/// The four cities of the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum City {
    /// Seattle crime events (paper: n = 862,873, b = 671.39 m).
    Seattle,
    /// Los Angeles crime events (paper: n = 1,255,668, b = 1588.47 m).
    LosAngeles,
    /// New York traffic accidents (paper: n = 1,499,928, b = 1062.53 m).
    NewYork,
    /// San Francisco 311 calls (paper: n = 4,333,098, b = 279.27 m).
    SanFrancisco,
}

impl City {
    /// All four cities in Table-5 order.
    pub const ALL: [City; 4] = [City::Seattle, City::LosAngeles, City::NewYork, City::SanFrancisco];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            City::Seattle => "Seattle",
            City::LosAngeles => "Los Angeles",
            City::NewYork => "New York",
            City::SanFrancisco => "San Francisco",
        }
    }

    /// Paper's full dataset size `n`.
    pub fn paper_size(&self) -> usize {
        match self {
            City::Seattle => 862_873,
            City::LosAngeles => 1_255_668,
            City::NewYork => 1_499_928,
            City::SanFrancisco => 4_333_098,
        }
    }

    /// Paper's Scott's-rule bandwidth in metres (Table 5), for reference.
    pub fn paper_bandwidth(&self) -> f64 {
        match self {
            City::Seattle => 671.39,
            City::LosAngeles => 1588.47,
            City::NewYork => 1062.53,
            City::SanFrancisco => 279.27,
        }
    }

    /// Event-category label set (used by attribute filtering demos).
    pub fn category_names(&self) -> &'static [&'static str] {
        match self {
            City::Seattle | City::LosAngeles => {
                &["burglary", "robbery", "assault", "theft", "vandalism"]
            }
            City::NewYork => &["rear-end", "sideswipe", "pedestrian", "cyclist"],
            City::SanFrancisco => {
                &["graffiti", "street-cleaning", "encampment", "noise", "pothole", "tree"]
            }
        }
    }

    /// Synthetic generator configuration emulating the city's shape.
    pub fn synth_config(&self) -> SynthConfig {
        /// One hotspot as `(cx, cy, sigma_x, sigma_y, weight)`.
        type Spot = (f64, f64, f64, f64, f64);
        // extents are rough metric spans of each city's projected MBR
        let (extent, grid, spots): (Rect, f64, Vec<Spot>) = match self {
            City::Seattle => (
                Rect::new(0.0, 0.0, 22_000.0, 38_000.0),
                120.0,
                vec![
                    // (cx, cy, sx, sy, w) — downtown, Capitol Hill, U-district
                    (9_500.0, 20_000.0, 900.0, 1_400.0, 3.0),
                    (11_000.0, 23_000.0, 700.0, 900.0, 2.0),
                    (11_500.0, 28_000.0, 800.0, 800.0, 1.5),
                    (8_000.0, 9_000.0, 1_500.0, 1_800.0, 1.0),
                ],
            ),
            City::LosAngeles => (
                Rect::new(0.0, 0.0, 70_000.0, 50_000.0),
                150.0,
                vec![
                    (35_000.0, 25_000.0, 2_500.0, 2_500.0, 3.0), // downtown
                    (20_000.0, 30_000.0, 2_000.0, 1_500.0, 2.0), // Hollywood
                    (15_000.0, 15_000.0, 2_500.0, 2_000.0, 1.5), // south bay
                    (55_000.0, 35_000.0, 3_000.0, 2_500.0, 1.0), // valley
                ],
            ),
            City::NewYork => (
                Rect::new(0.0, 0.0, 40_000.0, 45_000.0),
                100.0,
                vec![
                    (18_000.0, 25_000.0, 1_200.0, 3_500.0, 3.0), // Manhattan spine
                    (24_000.0, 18_000.0, 2_500.0, 2_000.0, 2.5), // Brooklyn
                    (26_000.0, 30_000.0, 2_500.0, 2_000.0, 2.0), // Queens
                    (14_000.0, 35_000.0, 1_800.0, 1_500.0, 1.0), // Bronx
                ],
            ),
            City::SanFrancisco => (
                Rect::new(0.0, 0.0, 12_000.0, 12_000.0),
                90.0,
                vec![
                    (6_500.0, 7_500.0, 500.0, 500.0, 3.0),   // Tenderloin/SoMa
                    (7_500.0, 8_200.0, 400.0, 400.0, 2.0),   // downtown
                    (5_000.0, 5_000.0, 900.0, 900.0, 1.5),   // Mission
                    (3_000.0, 8_000.0, 1_000.0, 800.0, 1.0), // Richmond
                ],
            ),
        };
        SynthConfig {
            extent,
            hotspots: spots
                .into_iter()
                .map(|(cx, cy, sx, sy, w)| Hotspot {
                    center: Point::new(cx, cy),
                    sigma_x: sx,
                    sigma_y: sy,
                    weight: w,
                })
                .collect(),
            background_fraction: 0.25,
            street_grid: Some(grid),
            categories: self.category_names().len() as u16,
            years: (2008, 2021),
        }
    }

    /// Generates the synthetic dataset at `scale` × the paper's size,
    /// deterministically (seeded per city).
    pub fn dataset(&self, scale: f64) -> Dataset {
        let n = ((self.paper_size() as f64 * scale).round() as usize).max(1);
        // arbitrary fixed per-city seeds
        let seed: u64 = match self {
            City::Seattle => 0x5EA7_71E5,
            City::LosAngeles => 0x1057_00A5,
            City::NewYork => 0x00E7_0B1D,
            City::SanFrancisco => 0x5F5F_5F5F,
        };
        let records = generate(&self.synth_config(), n, seed);
        Dataset::new(self.name(), records)
    }
}

/// Scott's-rule bandwidth of a generated dataset (what the experiments use
/// as the default `b`, mirroring the paper's methodology).
pub fn default_bandwidth(dataset: &Dataset) -> f64 {
    scott_bandwidth(&dataset.points())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cities_generate_within_extent() {
        for city in City::ALL {
            let d = city.dataset(0.001);
            assert!(!d.is_empty());
            let cfg = city.synth_config();
            for r in &d.records {
                assert!(cfg.extent.contains(&r.point), "{}: {:?}", city.name(), r.point);
            }
        }
    }

    #[test]
    fn scale_controls_size() {
        let d = City::Seattle.dataset(0.01);
        assert_eq!(d.len(), (862_873.0_f64 * 0.01).round() as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = City::NewYork.dataset(0.001);
        let b = City::NewYork.dataset(0.001);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn scott_bandwidth_is_city_scaled() {
        // bandwidth must be a small fraction of the extent, like Table 5
        for city in City::ALL {
            let d = city.dataset(0.005);
            let b = default_bandwidth(&d);
            let extent = city.synth_config().extent;
            let span = extent.width().max(extent.height());
            assert!(b > 0.0, "{}", city.name());
            assert!(b < span / 4.0, "{}: b={b} too large for span {span}", city.name());
        }
    }

    #[test]
    fn paper_metadata() {
        assert_eq!(City::SanFrancisco.paper_size(), 4_333_098);
        assert_eq!(City::Seattle.name(), "Seattle");
        assert!(City::LosAngeles.paper_bandwidth() > 1000.0);
        assert!(City::NewYork.category_names().contains(&"pedestrian"));
    }
}
