//! # kdv-data — datasets for the KDV experiments
//!
//! The paper evaluates on four city open-data feeds (Table 5) that cannot
//! be redistributed; this crate synthesises statistically comparable
//! stand-ins and provides the supporting data machinery:
//!
//! * [`record`] — event records (location + timestamp + category) and
//!   datasets with time/attribute filtering.
//! * [`synth`] — seeded spatial point processes: Gaussian hotspot
//!   mixtures, street-grid snapping, uniform background.
//! * [`catalog`] — the four cities (Seattle, Los Angeles, New York,
//!   San Francisco) with paper-matched sizes, extents and category mixes,
//!   scalable via a single factor.
//! * [`scott`] — Scott's-rule bandwidth selection (the paper's default).
//! * [`sample`] — seeded sampling without replacement (dataset-size
//!   sweeps).
//! * [`csvio`] — trivial CSV I/O so users can bring their own feeds.

pub mod catalog;
pub mod csvio;
pub mod record;
pub mod sample;
pub mod scott;
pub mod synth;

pub use catalog::{default_bandwidth, City};
pub use record::{Dataset, EventRecord};
pub use scott::scott_bandwidth;
