//! Seeded synthetic spatial point processes.
//!
//! The paper evaluates on city open-data feeds that are not bundled here;
//! these generators synthesise datasets with the same statistical shape KDV
//! cares about: a handful of strong Gaussian hotspots (downtown cores,
//! nightlife districts), street-grid alignment (events snap to a road
//! lattice), and a uniform background. Everything is seeded and
//! reproducible.

use kdv_core::geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{year_start, EventRecord};

/// A Gaussian hotspot component of the mixture.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Hotspot centre.
    pub center: Point,
    /// Standard deviation along x (metres).
    pub sigma_x: f64,
    /// Standard deviation along y (metres).
    pub sigma_y: f64,
    /// Relative mixture weight (normalised across all components).
    pub weight: f64,
}

/// Configuration for a synthetic city feed.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Geographic extent (projected metres).
    pub extent: Rect,
    /// Hotspot mixture components.
    pub hotspots: Vec<Hotspot>,
    /// Fraction of events drawn from the uniform background (0..=1).
    pub background_fraction: f64,
    /// Street-grid spacing in metres; `None` disables snapping.
    pub street_grid: Option<f64>,
    /// Number of event categories.
    pub categories: u16,
    /// Inclusive year range for timestamps.
    pub years: (i32, i32),
}

impl SynthConfig {
    /// A reasonable single-hotspot default over the given extent.
    pub fn simple(extent: Rect) -> Self {
        let c = extent.center();
        Self {
            extent,
            hotspots: vec![Hotspot {
                center: c,
                sigma_x: extent.width() / 8.0,
                sigma_y: extent.height() / 8.0,
                weight: 1.0,
            }],
            background_fraction: 0.3,
            street_grid: None,
            categories: 4,
            years: (2008, 2021),
        }
    }
}

/// Standard normal sample via Box–Muller (keeps us within the allowed
/// dependency list — no `rand_distr`).
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0)
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates `n` event records from the configured point process, seeded.
pub fn generate(config: &SynthConfig, n: usize, seed: u64) -> Vec<EventRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total_weight: f64 = config.hotspots.iter().map(|h| h.weight).sum();
    let t0 = year_start(config.years.0);
    let t1 = year_start(config.years.1 + 1);
    let ext = &config.extent;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut p = if config.hotspots.is_empty() || rng.gen::<f64>() < config.background_fraction {
            Point::new(rng.gen_range(ext.min_x..=ext.max_x), rng.gen_range(ext.min_y..=ext.max_y))
        } else {
            // pick a hotspot by weight
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = &config.hotspots[0];
            for h in &config.hotspots {
                pick -= h.weight;
                if pick <= 0.0 {
                    chosen = h;
                    break;
                }
            }
            Point::new(
                chosen.center.x + chosen.sigma_x * sample_standard_normal(&mut rng),
                chosen.center.y + chosen.sigma_y * sample_standard_normal(&mut rng),
            )
        };
        if let Some(spacing) = config.street_grid {
            // snap one coordinate to the nearest street, like events that
            // happen *along* roads (traffic accidents, street crime)
            if rng.gen::<bool>() {
                p.x = (p.x / spacing).round() * spacing;
            } else {
                p.y = (p.y / spacing).round() * spacing;
            }
        }
        if !ext.contains(&p) {
            continue; // resample points blown outside the city extent
        }
        out.push(EventRecord {
            point: p,
            timestamp: rng.gen_range(t0..t1),
            category: rng.gen_range(0..config.categories.max(1)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SynthConfig {
        let extent = Rect::new(0.0, 0.0, 10_000.0, 8_000.0);
        SynthConfig {
            extent,
            hotspots: vec![
                Hotspot {
                    center: Point::new(3_000.0, 4_000.0),
                    sigma_x: 400.0,
                    sigma_y: 400.0,
                    weight: 2.0,
                },
                Hotspot {
                    center: Point::new(8_000.0, 2_000.0),
                    sigma_x: 600.0,
                    sigma_y: 300.0,
                    weight: 1.0,
                },
            ],
            background_fraction: 0.2,
            street_grid: Some(100.0),
            categories: 5,
            years: (2008, 2021),
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let c = config();
        let a = generate(&c, 500, 42);
        let b = generate(&c, 500, 42);
        assert_eq!(a, b);
        let c2 = generate(&c, 500, 43);
        assert_ne!(a, c2);
    }

    #[test]
    fn all_points_inside_extent_with_valid_fields() {
        let c = config();
        let recs = generate(&c, 1000, 7);
        assert_eq!(recs.len(), 1000);
        let (t0, t1) = (year_start(2008), year_start(2022));
        for r in &recs {
            assert!(c.extent.contains(&r.point));
            assert!(r.timestamp >= t0 && r.timestamp < t1);
            assert!(r.category < 5);
        }
    }

    #[test]
    fn hotspots_concentrate_mass() {
        let c = config();
        let recs = generate(&c, 4000, 1);
        let near_hot1 =
            recs.iter().filter(|r| r.point.dist(&Point::new(3_000.0, 4_000.0)) < 1_000.0).count();
        // hotspot 1 carries 2/3 of the 80% mixture mass; even loosely this
        // must far exceed the ~3% a uniform distribution would put there
        assert!(
            near_hot1 as f64 > 0.25 * recs.len() as f64,
            "only {near_hot1} of {} points near hotspot 1",
            recs.len()
        );
    }

    #[test]
    fn street_snapping_aligns_coordinates() {
        let c = config();
        let recs = generate(&c, 500, 3);
        let aligned = recs
            .iter()
            .filter(|r| {
                (r.point.x / 100.0 - (r.point.x / 100.0).round()).abs() < 1e-9
                    || (r.point.y / 100.0 - (r.point.y / 100.0).round()).abs() < 1e-9
            })
            .count();
        assert_eq!(aligned, recs.len(), "every event lies on a street");
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn background_only_config() {
        let extent = Rect::new(0.0, 0.0, 100.0, 100.0);
        let c = SynthConfig {
            hotspots: vec![],
            background_fraction: 1.0,
            street_grid: None,
            categories: 1,
            years: (2019, 2019),
            extent,
        };
        let recs = generate(&c, 100, 9);
        assert_eq!(recs.len(), 100);
        assert!(recs.iter().all(|r| r.category == 0));
    }
}
