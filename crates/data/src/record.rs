//! Event records and datasets.
//!
//! The paper's four datasets are city open-data feeds where every row is a
//! located *event* (a crime, a collision, a 311 call) with a timestamp and
//! a category. [`EventRecord`] models that row; [`Dataset`] is a named
//! collection with convenience accessors used by the exploratory operations
//! (time and attribute filtering) and the experiment harness.

use kdv_core::geom::{Point, Rect};

/// Seconds in a (non-leap) year, used by the time helpers.
const SECS_PER_YEAR: i64 = 365 * 24 * 3600;
/// Unix timestamp of 2008-01-01T00:00:00Z — the earliest feed year.
pub const EPOCH_2008: i64 = 1_199_145_600;

/// One located event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Projected location (metres).
    pub point: Point,
    /// Event time as a unix timestamp (seconds).
    pub timestamp: i64,
    /// Category code; dataset-specific (e.g. crime type, call type).
    pub category: u16,
}

/// A named event dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (e.g. `"Seattle"`).
    pub name: String,
    /// All event records.
    pub records: Vec<EventRecord>,
}

impl Dataset {
    /// Creates a dataset from records.
    pub fn new(name: impl Into<String>, records: Vec<EventRecord>) -> Self {
        Self { name: name.into(), records }
    }

    /// Number of events `n`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset has no events.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The bare location points, in record order.
    pub fn points(&self) -> Vec<Point> {
        self.records.iter().map(|r| r.point).collect()
    }

    /// Minimum bounding rectangle of all event locations.
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::EMPTY;
        for rec in &self.records {
            r.expand(&rec.point);
        }
        r
    }

    /// Records with `from ≤ timestamp < to` (time-based filtering).
    pub fn filter_time(&self, from: i64, to: i64) -> Vec<EventRecord> {
        self.records.iter().filter(|r| r.timestamp >= from && r.timestamp < to).copied().collect()
    }

    /// Records with the given category (attribute-based filtering).
    pub fn filter_category(&self, category: u16) -> Vec<EventRecord> {
        self.records.iter().filter(|r| r.category == category).copied().collect()
    }

    /// Heap bytes held by the record buffer.
    pub fn space_bytes(&self) -> usize {
        self.records.capacity() * std::mem::size_of::<EventRecord>()
    }
}

/// Unix timestamp of 00:00:00 on 1 January of `year` (2008-based,
/// leap-day-free approximation adequate for synthetic feeds).
pub fn year_start(year: i32) -> i64 {
    EPOCH_2008 + (year as i64 - 2008) * SECS_PER_YEAR
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            "t",
            vec![
                EventRecord {
                    point: Point::new(0.0, 0.0),
                    timestamp: year_start(2018),
                    category: 1,
                },
                EventRecord {
                    point: Point::new(5.0, 2.0),
                    timestamp: year_start(2019),
                    category: 2,
                },
                EventRecord {
                    point: Point::new(1.0, 8.0),
                    timestamp: year_start(2019) + 100,
                    category: 1,
                },
                EventRecord {
                    point: Point::new(3.0, 3.0),
                    timestamp: year_start(2021),
                    category: 3,
                },
            ],
        )
    }

    #[test]
    fn mbr_and_points() {
        let d = sample();
        assert_eq!(d.len(), 4);
        let r = d.mbr();
        assert_eq!((r.min_x, r.min_y, r.max_x, r.max_y), (0.0, 0.0, 5.0, 8.0));
        assert_eq!(d.points().len(), 4);
    }

    #[test]
    fn time_filter_half_open() {
        let d = sample();
        let y2019 = d.filter_time(year_start(2019), year_start(2020));
        assert_eq!(y2019.len(), 2);
        // boundary: event exactly at year_start(2020) would be excluded
        let none = d.filter_time(year_start(2020), year_start(2021));
        assert!(none.is_empty());
    }

    #[test]
    fn category_filter() {
        let d = sample();
        assert_eq!(d.filter_category(1).len(), 2);
        assert_eq!(d.filter_category(9).len(), 0);
    }

    #[test]
    fn year_start_is_monotonic() {
        assert!(year_start(2019) > year_start(2018));
        assert_eq!(year_start(2008), EPOCH_2008);
    }
}
