//! Minimal CSV reader/writer for event datasets.
//!
//! Format (no quoting needed — all fields numeric):
//! `x,y,timestamp,category` with a header row. This lets users load their
//! own city feeds into the engines and lets the examples persist generated
//! data. Hand-rolled because the format is trivial and the allowed
//! dependency list contains no CSV crate.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use kdv_core::geom::Point;

use crate::record::{Dataset, EventRecord};

/// Errors raised while parsing an event CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row, with its 1-based line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a dataset as `x,y,timestamp,category` CSV.
pub fn write_csv<W: Write>(writer: W, dataset: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "x,y,timestamp,category")?;
    for r in &dataset.records {
        writeln!(w, "{},{},{},{}", r.point.x, r.point.y, r.timestamp, r.category)?;
    }
    w.flush()
}

/// Writes a dataset to a file path.
pub fn write_csv_file(path: &Path, dataset: &Dataset) -> io::Result<()> {
    write_csv(std::fs::File::create(path)?, dataset)
}

/// Reads an event CSV (with header) into a dataset named `name`.
pub fn read_csv<R: BufRead>(reader: R, name: &str) -> Result<Dataset, CsvError> {
    let mut records = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if i == 0 || line.is_empty() {
            continue; // header / blank
        }
        let mut fields = line.split(',');
        let mut next_field = |what: &str| {
            fields.next().ok_or_else(|| CsvError::Parse {
                line: i + 1,
                message: format!("missing field '{what}'"),
            })
        };
        let parse_err = |what: &str| CsvError::Parse {
            line: i + 1,
            message: format!("invalid value for '{what}'"),
        };
        let x: f64 = next_field("x")?.parse().map_err(|_| parse_err("x"))?;
        let y: f64 = next_field("y")?.parse().map_err(|_| parse_err("y"))?;
        let timestamp: i64 =
            next_field("timestamp")?.parse().map_err(|_| parse_err("timestamp"))?;
        let category: u16 = next_field("category")?.parse().map_err(|_| parse_err("category"))?;
        records.push(EventRecord { point: Point::new(x, y), timestamp, category });
    }
    Ok(Dataset::new(name, records))
}

/// Reads an event CSV from a file path; the dataset is named after the
/// file stem.
pub fn read_csv_file(path: &Path) -> Result<Dataset, CsvError> {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_string());
    let file = std::fs::File::open(path)?;
    read_csv(io::BufReader::new(file), &name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            "s",
            vec![
                EventRecord {
                    point: Point::new(1.5, -2.25),
                    timestamp: 1_600_000_000,
                    category: 3,
                },
                EventRecord { point: Point::new(0.0, 0.0), timestamp: 0, category: 0 },
            ],
        )
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &d).unwrap();
        let parsed = read_csv(io::BufReader::new(buf.as_slice()), "s").unwrap();
        assert_eq!(parsed.records, d.records);
        assert_eq!(parsed.name, "s");
    }

    #[test]
    fn header_and_blank_lines_skipped() {
        let text = "x,y,timestamp,category\n\n1,2,3,4\n";
        let d = read_csv(io::BufReader::new(text.as_bytes()), "t").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.records[0].category, 4);
    }

    #[test]
    fn malformed_rows_report_line_numbers() {
        let text = "x,y,timestamp,category\n1,2,3,4\n1,notanumber,3,4\n";
        let err = read_csv(io::BufReader::new(text.as_bytes()), "t").unwrap_err();
        match err {
            CsvError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("'y'"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_fields_rejected() {
        let text = "x,y,timestamp,category\n1,2\n";
        assert!(matches!(
            read_csv(io::BufReader::new(text.as_bytes()), "t"),
            Err(CsvError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("kdv_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.csv");
        let d = sample();
        write_csv_file(&path, &d).unwrap();
        let parsed = read_csv_file(&path).unwrap();
        assert_eq!(parsed.name, "events");
        assert_eq!(parsed.records, d.records);
        std::fs::remove_file(&path).ok();
    }
}
