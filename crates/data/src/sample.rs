//! Random sampling without replacement (the paper's dataset-size sweeps).
//!
//! Figures 14, 17 and 19 vary the dataset size by sampling 25/50/75/100%
//! of each dataset "without replacement" — a seeded Fisher–Yates partial
//! shuffle here, so every fraction of the same dataset is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::EventRecord;

/// Returns `k` records sampled uniformly without replacement, seeded.
/// When `k ≥ records.len()` a copy of the whole slice is returned.
pub fn sample_without_replacement(
    records: &[EventRecord],
    k: usize,
    seed: u64,
) -> Vec<EventRecord> {
    let n = records.len();
    if k >= n {
        return records.to_vec();
    }
    let mut out = records.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    // partial Fisher–Yates: place a random remaining record at position i
    for i in 0..k {
        let j = rng.gen_range(i..n);
        out.swap(i, j);
    }
    out.truncate(k);
    out
}

/// Samples `fraction` (clamped to `[0, 1]`) of the records.
pub fn sample_fraction(records: &[EventRecord], fraction: f64, seed: u64) -> Vec<EventRecord> {
    let k = ((records.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
    sample_without_replacement(records, k, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Point;

    fn records(n: usize) -> Vec<EventRecord> {
        (0..n)
            .map(|i| EventRecord {
                point: Point::new(i as f64, 0.0),
                timestamp: i as i64,
                category: 0,
            })
            .collect()
    }

    #[test]
    fn sizes_and_determinism() {
        let r = records(100);
        let a = sample_without_replacement(&r, 25, 9);
        assert_eq!(a.len(), 25);
        let b = sample_without_replacement(&r, 25, 9);
        assert_eq!(a, b);
        let c = sample_without_replacement(&r, 25, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn no_duplicates() {
        let r = records(200);
        let s = sample_without_replacement(&r, 150, 3);
        let mut ids: Vec<i64> = s.iter().map(|e| e.timestamp).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 150, "sampling must be without replacement");
    }

    #[test]
    fn oversampling_returns_all() {
        let r = records(10);
        assert_eq!(sample_without_replacement(&r, 100, 1).len(), 10);
        assert_eq!(sample_fraction(&r, 1.0, 1).len(), 10);
    }

    #[test]
    fn fraction_rounding() {
        let r = records(10);
        assert_eq!(sample_fraction(&r, 0.25, 1).len(), 3); // rounds 2.5 → 3
        assert_eq!(sample_fraction(&r, 0.0, 1).len(), 0);
        assert_eq!(sample_fraction(&r, 2.0, 1).len(), 10);
    }

    #[test]
    fn uniformity_smoke() {
        // each record should be picked roughly k/n of the time
        let r = records(20);
        let mut hits = [0u32; 20];
        for seed in 0..2000 {
            for e in sample_without_replacement(&r, 5, seed) {
                hits[e.timestamp as usize] += 1;
            }
        }
        // expected 2000 * 5/20 = 500 per slot; allow generous tolerance
        for (i, &h) in hits.iter().enumerate() {
            assert!((350..650).contains(&h), "slot {i}: {h}");
        }
    }
}
