//! Property-based tests for the data machinery: CSV round trips, the
//! sampler's invariants, and Scott's-rule scaling.

use kdv_core::geom::Point;
use kdv_data::csvio;
use kdv_data::record::{Dataset, EventRecord};
use kdv_data::sample::{sample_fraction, sample_without_replacement};
use kdv_data::scott::scott_bandwidth;
use proptest::prelude::*;

fn records_strategy() -> impl Strategy<Value = Vec<EventRecord>> {
    prop::collection::vec(
        (-1e7f64..1e7, -1e7f64..1e7, 0i64..2_000_000_000, 0u16..32).prop_map(
            |(x, y, timestamp, category)| EventRecord {
                point: Point::new(x, y),
                timestamp,
                category,
            },
        ),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CSV write → read reproduces the records exactly (coordinates use
    /// Rust's shortest-round-trip float formatting).
    #[test]
    fn csv_round_trip_exact(records in records_strategy()) {
        let dataset = Dataset::new("fuzz", records);
        let mut buf = Vec::new();
        csvio::write_csv(&mut buf, &dataset).unwrap();
        let parsed = csvio::read_csv(std::io::BufReader::new(buf.as_slice()), "fuzz").unwrap();
        prop_assert_eq!(parsed.records, dataset.records);
    }

    /// Sampling without replacement: size, membership, and no duplicates.
    #[test]
    fn sampler_invariants(records in records_strategy(), k in 0usize..250, seed in 0u64..) {
        let sample = sample_without_replacement(&records, k, seed);
        prop_assert_eq!(sample.len(), k.min(records.len()));
        // each sampled record exists in the source...
        for s in &sample {
            prop_assert!(records.contains(s));
        }
        // ...and indices are distinct (timestamps may repeat, so compare
        // by full record count: sampling k distinct slots of a multiset
        // can pick equal records, so uniqueness is only checkable when
        // all source records are distinct)
        let mut src = records.clone();
        src.sort_by(|a, b| {
            (a.timestamp, a.category, a.point.x.to_bits(), a.point.y.to_bits()).cmp(&(
                b.timestamp,
                b.category,
                b.point.x.to_bits(),
                b.point.y.to_bits(),
            ))
        });
        src.dedup();
        if src.len() == records.len() {
            let mut s = sample.clone();
            s.sort_by(|a, b| {
                (a.timestamp, a.category, a.point.x.to_bits(), a.point.y.to_bits()).cmp(&(
                    b.timestamp,
                    b.category,
                    b.point.x.to_bits(),
                    b.point.y.to_bits(),
                ))
            });
            s.dedup();
            prop_assert_eq!(s.len(), sample.len(), "duplicate pick detected");
        }
    }

    /// Fractional sampling is consistent with k-sampling.
    #[test]
    fn fraction_matches_rounded_k(records in records_strategy(), seed in 0u64..) {
        let half = sample_fraction(&records, 0.5, seed);
        let k = ((records.len() as f64) * 0.5).round() as usize;
        prop_assert_eq!(half.len(), k);
    }

    /// Scott's rule is translation invariant and scales linearly with a
    /// uniform coordinate dilation.
    #[test]
    fn scott_affine_behaviour(
        records in records_strategy(),
        dx in -1e6f64..1e6,
        s in 0.1f64..10.0,
    ) {
        let pts: Vec<Point> = records.iter().map(|r| r.point).collect();
        prop_assume!(pts.len() >= 2);
        let b0 = scott_bandwidth(&pts);
        prop_assume!(b0 > 1e-9);

        let shifted: Vec<Point> = pts.iter().map(|p| Point::new(p.x + dx, p.y + dx)).collect();
        let b_shift = scott_bandwidth(&shifted);
        prop_assert!((b_shift - b0).abs() <= 1e-6 * b0.max(1.0), "shift: {b_shift} vs {b0}");

        let scaled: Vec<Point> = pts.iter().map(|p| Point::new(p.x * s, p.y * s)).collect();
        let b_scaled = scott_bandwidth(&scaled);
        prop_assert!(
            (b_scaled - s * b0).abs() <= 1e-6 * (s * b0).max(1.0),
            "scale: {b_scaled} vs {}",
            s * b0
        );
    }

    /// Dataset filters partition consistently: category filters are
    /// disjoint and cover the dataset.
    #[test]
    fn category_filters_partition(records in records_strategy()) {
        let dataset = Dataset::new("fuzz", records);
        let total: usize = (0u16..32).map(|c| dataset.filter_category(c).len()).sum();
        prop_assert_eq!(total, dataset.len());
    }
}
