//! Ablation benches for the beyond-the-paper extensions: shared-envelope
//! multi-bandwidth sweeps, incremental pan re-rendering, and the weighted
//! sweep's overhead over the plain one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::multi_bandwidth::compute_multi_bandwidth;
use kdv_core::weighted::compute_weighted;
use kdv_core::{rao, sweep_bucket, KernelType};
use kdv_explore::incremental::pan_render;

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Point::new((t * 1.37) % 10_000.0, (t * 2.11) % 8_000.0)
        })
        .collect()
}

fn bench_multi_bandwidth(c: &mut Criterion) {
    let pts = points(40_000);
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 8_000.0), 512, 384).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 1.0);
    let bandwidths = [100.0, 200.0, 400.0, 800.0, 1_600.0];
    let mut group = c.benchmark_group("multi_bandwidth_5");
    group.sample_size(10);
    group.bench_function("shared_envelope", |b| {
        b.iter(|| compute_multi_bandwidth(&params, &pts, &bandwidths).unwrap())
    });
    group.bench_function("independent_runs", |b| {
        b.iter(|| {
            bandwidths
                .iter()
                .map(|&bw| {
                    let mut p = params;
                    p.bandwidth = bw;
                    sweep_bucket::compute(&p, &pts).unwrap()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_incremental_pan(c: &mut Criterion) {
    let pts = points(40_000);
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 8_000.0), 512, 384).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 300.0);
    let prev = rao::compute_bucket(&params, &pts).unwrap();
    let mut group = c.benchmark_group("pan_rerender");
    group.sample_size(10);
    for rows in [8usize, 32, 128] {
        let region = grid.region.translated(0.0, rows as f64 * grid.gap_y());
        let next_grid = GridSpec::new(region, 512, 384).unwrap();
        let next_params = KdvParams { grid: next_grid, ..params };
        group.bench_with_input(BenchmarkId::new("incremental", rows), &next_params, |b, p| {
            b.iter(|| pan_render(&prev, &grid, p, &pts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("full", rows), &next_params, |b, p| {
            b.iter(|| rao::compute_bucket(p, &pts).unwrap())
        });
    }
    group.finish();
}

fn bench_weighted_overhead(c: &mut Criterion) {
    let pts = points(40_000);
    let weights = vec![1.0_f64; pts.len()];
    let grid = GridSpec::new(Rect::new(0.0, 0.0, 10_000.0, 8_000.0), 512, 384).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 300.0);
    let mut group = c.benchmark_group("weighted_overhead");
    group.sample_size(10);
    group.bench_function("plain_bucket", |b| {
        b.iter(|| sweep_bucket::compute(&params, &pts).unwrap())
    });
    group.bench_function("weighted_bucket", |b| {
        b.iter(|| compute_weighted(&params, &pts, &weights).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_multi_bandwidth, bench_incremental_pan, bench_weighted_overhead);
criterion_main!(benches);
