//! Micro-bench: kernel evaluation, direct vs aggregate-based.
//!
//! The aggregate path (Lemma 3) must be O(1) per pixel regardless of how
//! many points back the aggregates — this bench pins that down against the
//! direct per-point sum.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::aggregate::RangeAggregates;
use kdv_core::geom::Point;
use kdv_core::KernelType;

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Point::new((t * 1.37) % 100.0, (t * 2.11) % 100.0)
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let q = Point::new(50.0, 50.0);
    let b = 120.0; // everything in range: worst case for direct
    let mut group = c.benchmark_group("kernel_eval");
    for n in [100usize, 1_000, 10_000] {
        let pts = points(n);
        let agg = RangeAggregates::from_points(&pts);
        for kernel in KernelType::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("direct_{kernel}"), n),
                &pts,
                |bch, pts| bch.iter(|| kernel.density_scan(black_box(&q), pts, b, 1.0)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("aggregate_{kernel}"), n),
                &agg,
                |bch, agg| bch.iter(|| kernel.density_from_aggregates(black_box(&q), agg, b, 1.0)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
