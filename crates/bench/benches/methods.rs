//! End-to-end method comparison on a small fixed workload (Criterion
//! companion to the `table7` harness binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_baselines::AnyMethod;
use kdv_core::driver::KdvParams;
use kdv_core::grid::GridSpec;
use kdv_core::{KernelType, Method};
use kdv_data::catalog::City;

fn bench_methods(c: &mut Criterion) {
    let dataset = City::Seattle.dataset(0.002);
    let points = dataset.points();
    let mbr = dataset.mbr();
    let bandwidth = kdv_data::scott_bandwidth(&points);
    let grid = GridSpec::new(mbr, 160, 120).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth)
        .with_weight(1.0 / points.len() as f64);

    let methods: Vec<AnyMethod> = vec![
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamSort),
        AnyMethod::Slam(Method::SlamBucket),
        AnyMethod::Slam(Method::SlamSortRao),
        AnyMethod::Slam(Method::SlamBucketRao),
    ];

    let mut group = c.benchmark_group("methods_seattle_160x120");
    group.sample_size(10);
    for m in methods {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, m| {
            b.iter(|| m.compute(&params, &points).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
