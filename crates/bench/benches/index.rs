//! Micro-bench: circular range queries on the three index substrates
//! (kd-tree, ball-tree, aggregate quadtree) at varying radii.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::geom::Point;
use kdv_index::{BallTree, KdTree, QuadTree};

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Point::new((t * 1.37) % 1_000.0, (t * 2.11) % 1_000.0)
        })
        .collect()
}

fn bench_range_queries(c: &mut Criterion) {
    let pts = points(100_000);
    let kd = KdTree::build(&pts);
    let ball = BallTree::build(&pts);
    let quad = QuadTree::build(&pts);
    let q = Point::new(500.0, 500.0);

    let mut group = c.benchmark_group("range_query_100k");
    for radius in [10.0_f64, 50.0, 200.0] {
        group.bench_with_input(BenchmarkId::new("kdtree", radius), &radius, |b, &r| {
            b.iter(|| kd.count_in_range(black_box(&q), r))
        });
        group.bench_with_input(BenchmarkId::new("balltree", radius), &radius, |b, &r| {
            b.iter(|| ball.count_in_range(black_box(&q), r))
        });
        group.bench_with_input(BenchmarkId::new("quadtree_agg", radius), &radius, |b, &r| {
            b.iter(|| {
                let count = std::cell::Cell::new(0u64);
                quad.visit_range(
                    black_box(&q),
                    r,
                    |agg| count.set(count.get() + agg.count),
                    |_| count.set(count.get() + 1),
                );
                count.get()
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let pts = points(100_000);
    let mut group = c.benchmark_group("index_build_100k");
    group.sample_size(10);
    group.bench_function("kdtree", |b| b.iter(|| KdTree::build(&pts)));
    group.bench_function("balltree", |b| b.iter(|| BallTree::build(&pts)));
    group.bench_function("quadtree", |b| b.iter(|| QuadTree::build(&pts)));
    group.finish();
}

criterion_group!(benches, bench_range_queries, bench_build);
criterion_main!(benches);
