//! Micro-bench: envelope extraction, full-scan vs banded index.
//!
//! The full scan visits all `n` points per row (`O(Y·n)` across the
//! raster); the banded index binary-searches the y-sorted order and
//! touches only the `|E(k)|` in-band points (`O(Y·(log n + |E(k)|))`).
//! At small bandwidth almost every point is out of band and the banded
//! path should win by orders of magnitude; at bandwidth ≈ region size
//! every point is in band and the two must be on par.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::driver::{KdvParams, SweepContext};
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};

fn bench_extraction(c: &mut Criterion) {
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), 50_000, 11).into_iter().map(|r| r.point).collect();
    let grid = GridSpec::new(extent, 256, 256).unwrap();

    let mut group = c.benchmark_group("envelope_extraction");
    // small, medium, and region-size bandwidths
    for bandwidth in [50.0, 400.0, 10_000.0] {
        let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth);
        let ctx = SweepContext::new(&params, &points).unwrap();
        let mut envelope = EnvelopeBuffer::for_points(points.len());

        group.bench_with_input(BenchmarkId::new("scan", bandwidth), &ctx, |b, ctx| {
            b.iter(|| {
                let mut total = 0usize;
                for &k in &ctx.ks {
                    total += envelope.fill(&ctx.points, bandwidth, k).len();
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("banded", bandwidth), &ctx, |b, ctx| {
            b.iter(|| {
                let mut total = 0usize;
                for &k in &ctx.ks {
                    let band = ctx.index.band(bandwidth, k);
                    if band.is_empty() {
                        continue;
                    }
                    total += envelope.fill_band(&ctx.index, band, bandwidth, k).len();
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
