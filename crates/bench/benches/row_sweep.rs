//! Micro-bench: one pixel row, SLAM_SORT vs SLAM_BUCKET.
//!
//! Isolates the per-row difference that Theorems 1 and 2 predict: sorting
//! costs `O(|E| log |E|)` where bucketing costs `O(|E|)`, both plus `O(X)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::driver::RowEngine;
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::geom::Point;
use kdv_core::sweep_bucket::BucketSweep;
use kdv_core::sweep_sort::SortSweep;
use kdv_core::KernelType;

fn bench_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_sweep");
    let x_count = 1_280usize;
    let xs: Vec<f64> = (0..x_count).map(|i| i as f64).collect();
    for n_env in [1_000usize, 10_000, 100_000] {
        // envelope points spread along the row with bandwidth 40 px
        let pts: Vec<Point> = (0..n_env)
            .map(|i| {
                let t = i as f64;
                Point::new((t * 7.9) % x_count as f64, ((t * 3.3) % 60.0) - 30.0)
            })
            .collect();
        let mut env = EnvelopeBuffer::new();
        env.fill(&pts, 40.0, 0.0);
        let intervals = env.intervals().to_vec();
        let mut out = vec![0.0; x_count];

        group.bench_with_input(BenchmarkId::new("sort", n_env), &intervals, |b, iv| {
            let mut engine = SortSweep::new(KernelType::Epanechnikov, 40.0, 1.0);
            b.iter(|| engine.process_row(&xs, 0.0, iv, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("bucket", n_env), &intervals, |b, iv| {
            let mut engine = BucketSweep::new(KernelType::Epanechnikov, 40.0, 1.0);
            b.iter(|| engine.process_row(&xs, 0.0, iv, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_row);
criterion_main!(benches);
