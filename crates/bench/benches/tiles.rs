//! Micro-bench: tile-path cost structure.
//!
//! Three quantities frame the serving layer's economics:
//!
//! * `monolithic` — the plain SLAM_BUCKET raster (the baseline a tiled
//!   computation must not regress when every tile is needed anyway).
//! * `stitched` — compute all tiles through the band path and reassemble;
//!   the delta over `monolithic` is the pure tiling overhead (band
//!   slicing + stitch copies — memory movement, no arithmetic).
//! * `serve_cold` / `serve_warm` — one 512×512 viewport through the
//!   [`TileServer`], against an empty and a populated cache; the warm
//!   case is the assembly floor every cache hit pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::{sweep_bucket, tile, KernelType};
use kdv_data::synth::{generate, SynthConfig};
use kdv_serve::{PyramidSpec, ServeConfig, TileServer, Viewport};

fn bench_tiles(c: &mut Criterion) {
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), 50_000, 11).into_iter().map(|r| r.point).collect();
    let grid = GridSpec::new(extent, 1024, 1024).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 400.0)
        .with_weight(1.0 / points.len() as f64);

    let mut group = c.benchmark_group("tiles");
    group.sample_size(10);
    group.bench_function("monolithic_1024", |b| {
        b.iter(|| sweep_bucket::compute(&params, &points).unwrap());
    });
    for tile_size in [64usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("stitched_1024", tile_size),
            &tile_size,
            |b, &ts| {
                b.iter(|| tile::compute_stitched(&params, &points, ts).unwrap());
            },
        );
    }

    let pyramid = PyramidSpec::new(extent, 256, 512, 512, 1).unwrap();
    let config = ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth: 400.0,
        weight: 1.0 / points.len() as f64,
    };
    let vp = Viewport { zoom: 1, px: 256, py: 256, width: 512, height: 512 };
    group.bench_function("serve_cold_512", |b| {
        b.iter(|| {
            let server = TileServer::new(pyramid, config, points.clone(), 256 << 20, 16);
            server.serve_viewport(&vp, 0).unwrap()
        });
    });
    let warm = TileServer::new(pyramid, config, points.clone(), 256 << 20, 16);
    warm.serve_viewport(&vp, 0).unwrap();
    group.bench_function("serve_warm_512", |b| {
        b.iter(|| warm.serve_viewport(&vp, 0).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_tiles);
criterion_main!(benches);
