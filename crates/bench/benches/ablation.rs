//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **RAO vs fixed sweep direction** on skewed aspect ratios — the whole
//!   point of Section 3.6 (sweeping the long dimension multiplies the `n`
//!   term by the wrong factor).
//! * **Row-parallel extension** (beyond the paper) — scaling with thread
//!   count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::parallel::{compute_parallel, ParallelEngine};
use kdv_core::{rao, sweep_bucket, KernelType};

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Point::new((t * 1.37) % 10_000.0, (t * 2.11) % 10_000.0)
        })
        .collect()
}

fn bench_rao_aspect(c: &mut Criterion) {
    let pts = points(30_000);
    let region = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let mut group = c.benchmark_group("rao_aspect_ratio");
    group.sample_size(10);
    // total pixel budget fixed at ~96k; aspect ratio swings from wide to tall
    for &(x, y) in &[(1280usize, 75usize), (640, 150), (320, 300), (160, 600), (80, 1200)] {
        let grid = GridSpec::new(region, x, y).unwrap();
        let params = KdvParams::new(grid, KernelType::Epanechnikov, 300.0);
        group.bench_with_input(
            BenchmarkId::new("bucket_fixed", format!("{x}x{y}")),
            &params,
            |b, p| b.iter(|| sweep_bucket::compute(p, &pts).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("bucket_rao", format!("{x}x{y}")),
            &params,
            |b, p| b.iter(|| rao::compute_bucket(p, &pts).unwrap()),
        );
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let pts = points(30_000);
    let region = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let grid = GridSpec::new(region, 640, 480).unwrap();
    let params = KdvParams::new(grid, KernelType::Epanechnikov, 300.0);
    let mut group = c.benchmark_group("row_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| compute_parallel(&params, &pts, ParallelEngine::Bucket, t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rao_aspect, bench_parallel);
criterion_main!(benches);
