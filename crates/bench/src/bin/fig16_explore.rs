//! E5 — paper Figure 16: exploratory operations (zooming and panning) on
//! Seattle and Los Angeles, events restricted to calendar year 2019.
//!
//! Zooming: the dataset MBR scaled by {0.25, 0.5, 0.75, 1}. Panning: five
//! random `0.5H × 0.5W` windows inside the MBR. Resolution fixed (like the
//! paper's 1280×960); the bandwidth is the year-filtered Scott value.

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::GridSpec;
use kdv_core::{KernelType, Method};
use kdv_data::catalog::City;
use kdv_data::record::year_start;
use kdv_explore::{pan_regions, zoom_regions};

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 16: zooming and panning (events from year 2019)", &cfg);
    let methods = figure_lineup();

    for city in [City::Seattle, City::LosAngeles] {
        let cd = CityData::load(city, cfg.scale);
        // time-based filter: 1 Jan 2019 .. 31 Dec 2019
        let year_points: Vec<Point> = cd
            .dataset
            .filter_time(year_start(2019), year_start(2020))
            .iter()
            .map(|r| r.point)
            .collect();
        let bandwidth = kdv_data::scott_bandwidth(&year_points);
        let weight = 1.0 / year_points.len().max(1) as f64;
        eprintln!("{}: {} events in 2019, b={:.1} m", city.name(), year_points.len(), bandwidth);

        // (a, b): zooming
        let mut headers = vec!["Zoom ratio".to_string()];
        headers.extend(methods.iter().map(|m| m.name()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut zoom_table = Table::new(format!("Figure 16 zoom — {}", city.name()), &href);
        let ratios = [0.25, 0.5, 0.75, 1.0];
        for (region, ratio) in zoom_regions(cd.mbr, &ratios).into_iter().zip(ratios) {
            let grid = GridSpec::new(region, cfg.resolution.0, cfg.resolution.1).unwrap();
            let params =
                KdvParams::new(grid, KernelType::Epanechnikov, bandwidth).with_weight(weight);
            let mut row = vec![format!("{ratio}")];
            for m in &methods {
                let t = time_method(m, &params, &year_points, cfg.cap);
                row.push(t.cell(cfg.cap_secs()));
                eprintln!("  zoom {:<5} {:<18} {}", ratio, m.name(), row.last().unwrap());
            }
            zoom_table.push_row(row);
        }
        let stem = format!("fig16_zoom_{}", city.name().to_lowercase().replace(' ', "_"));
        zoom_table.emit(&cfg.out_dir, &stem);

        // (c, d): panning
        let mut headers = vec!["Pan #".to_string()];
        headers.extend(methods.iter().map(|m| m.name()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut pan_table = Table::new(format!("Figure 16 pan — {}", city.name()), &href);
        for (i, region) in pan_regions(cd.mbr, 5, 0xF16).into_iter().enumerate() {
            let grid = GridSpec::new(region, cfg.resolution.0, cfg.resolution.1).unwrap();
            let params =
                KdvParams::new(grid, KernelType::Epanechnikov, bandwidth).with_weight(weight);
            let mut row = vec![format!("{}", i + 1)];
            for m in &methods {
                let t = time_method(m, &params, &year_points, cfg.cap);
                row.push(t.cell(cfg.cap_secs()));
                eprintln!("  pan {:<3} {:<18} {}", i + 1, m.name(), row.last().unwrap());
            }
            pan_table.push_row(row);
        }
        let stem = format!("fig16_pan_{}", city.name().to_lowercase().replace(' ', "_"));
        pan_table.emit(&cfg.out_dir, &stem);
    }
}
