//! Viewport-trace replay benchmark for the tile-pyramid serving layer.
//!
//! Replays three synthetic exploration traces — a horizontal pan, a zoom
//! ladder and a revisit loop — against a fresh [`TileServer`] (cold: every
//! band computed) and again against the now-warm cache (warm: assembly
//! from cached tiles only). The pan trace is the cache's home turf: a
//! miss computes the whole tile row band, so panning inside a band is
//! pure reuse and the warm/cold ratio is the amortisation the serving
//! layer exists for.
//!
//! Appends one dated entry per run to `BENCH_tiles.json` in the output
//! directory (`--out`, default `results/`), so successive runs accumulate
//! a history (`./ci.sh bench` drives this).

use std::time::Instant;

use kdv_bench::HarnessConfig;
use kdv_core::geom::{Point, Rect};
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};
use kdv_serve::{PyramidSpec, ServeConfig, TileServer, Viewport};

const TILE_SIZE: usize = 256;
const BASE_RES: usize = 512;
const MAX_ZOOM: u8 = 2;

fn make_server(points: &[Point], extent: Rect, bandwidth: f64, cache_bytes: usize) -> TileServer {
    let pyramid = PyramidSpec::new(extent, TILE_SIZE, BASE_RES, BASE_RES, MAX_ZOOM)
        .expect("valid pyramid geometry");
    let config = ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth,
        weight: 1.0 / points.len().max(1) as f64,
    };
    TileServer::new(pyramid, config, points.to_vec(), cache_bytes, 16)
}

/// A horizontal pan across the deepest level: 512×512 window stepping
/// 128 px right — the canonical interactive-exploration access pattern.
fn pan_trace() -> Vec<Viewport> {
    (0..12)
        .map(|i| Viewport { zoom: MAX_ZOOM, px: i * 128, py: 640, width: 512, height: 512 })
        .collect()
}

/// A zoom ladder: the same world quadrant at every level, twice over.
fn zoom_trace() -> Vec<Viewport> {
    let mut out = Vec::new();
    for _ in 0..2 {
        for zoom in 0..=MAX_ZOOM {
            let res = BASE_RES << zoom;
            out.push(Viewport {
                zoom,
                px: res / 4,
                py: res / 4,
                width: (res / 2).min(512),
                height: (res / 2).min(512),
            });
        }
    }
    out
}

/// A revisit loop: six mid-level viewports cycled three times.
fn revisit_trace() -> Vec<Viewport> {
    let spots = [(0, 0), (256, 128), (512, 256), (128, 512), (384, 384), (0, 256)]
        .map(|(px, py)| Viewport { zoom: 1, px, py, width: 384, height: 384 });
    (0..3).flat_map(|_| spots).collect()
}

/// Replays `trace` once, returning wall seconds.
fn replay(server: &TileServer, trace: &[Viewport]) -> f64 {
    let t0 = Instant::now();
    for vp in trace {
        server.serve_viewport(vp, 0).expect("trace viewport must be servable");
    }
    t0.elapsed().as_secs_f64()
}

struct Row {
    trace: &'static str,
    requests: usize,
    cold_s: f64,
    warm_s: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.warm_s > 0.0 {
            self.cold_s / self.warm_s
        } else {
            f64::INFINITY
        }
    }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (5_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 11).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;

    println!(
        "tile serving bench: n={} tile={TILE_SIZE}px base={BASE_RES}x{BASE_RES} max_zoom={MAX_ZOOM} bandwidth={bandwidth}",
        points.len()
    );
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>9} {:>7} {:>7} {:>10}",
        "trace", "requests", "cold", "warm", "speedup", "hits", "misses", "evictions"
    );

    let traces: [(&'static str, Vec<Viewport>); 3] =
        [("pan", pan_trace()), ("zoom", zoom_trace()), ("revisit", revisit_trace())];
    let mut rows = Vec::new();
    for (name, trace) in &traces {
        let server = make_server(&points, extent, bandwidth, 512 << 20);
        let cold_s = replay(&server, trace);
        // warm: median of 3 replays over the now-populated cache
        let warm = [replay(&server, trace), replay(&server, trace), replay(&server, trace)];
        let warm_s = kdv_obs::stats::median_f64(&warm).expect("three samples");
        let stats = server.cache_stats();
        let row = Row {
            trace: name,
            requests: trace.len(),
            cold_s,
            warm_s,
            hits: stats.hits(),
            misses: stats.misses(),
            evictions: stats.evictions(),
        };
        println!(
            "{:>10} {:>9} {:>10.2}ms {:>10.2}ms {:>8.1}x {:>7} {:>7} {:>10}",
            row.trace,
            row.requests,
            row.cold_s * 1e3,
            row.warm_s * 1e3,
            row.speedup(),
            row.hits,
            row.misses,
            row.evictions
        );
        rows.push(row);
    }

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {},\n      \"tile_size\": {TILE_SIZE},\n      \"base_res\": {BASE_RES},\n      \"max_zoom\": {MAX_ZOOM},\n      \"bandwidth\": {bandwidth},\n      \"configs\": [\n",
        kdv_bench::utc_date(now),
        points.len()
    );
    for (i, r) in rows.iter().enumerate() {
        entry.push_str(&format!(
            "        {{\"trace\": \"{}\", \"requests\": {}, \"cold_s\": {:.6}, \"warm_s\": {:.6}, \"speedup\": {:.2}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}{}\n",
            r.trace,
            r.requests,
            r.cold_s,
            r.warm_s,
            r.speedup(),
            r.hits,
            r.misses,
            r.evictions,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    entry.push_str("      ]\n    }");

    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_tiles.json");
    kdv_bench::append_run(&path, &entry);
    println!("appended run to {}", path.display());

    let pan = &rows[0];
    if pan.speedup() < 5.0 {
        eprintln!(
            "warning: pan warm/cold speedup {:.1}x below the 5x expectation — cache ineffective?",
            pan.speedup()
        );
    }
}
