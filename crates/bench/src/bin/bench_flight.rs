//! Flight-recorder benchmark: ring overhead, trigger injection, and
//! Prometheus export agreement.
//!
//! Three gates, mirroring the observability acceptance criteria:
//!
//! 1. **Overhead** — replays the canonical pan trace against a fresh
//!    [`TileServer`] with the per-thread span rings off and on. The
//!    recorder-on arm must stay within [`MAX_RATIO`] of the off arm and
//!    every response must be bitwise identical (checksummed per
//!    request) — the flight recorder is observation-only.
//! 2. **Trigger injection** — a zero deadline forces a shed and a 1 ns
//!    p99 target forces an SLO breach; each must produce *exactly one*
//!    incident dump that validates as Chrome-trace JSON and carries the
//!    offending request's span tree (the breach dump also its exemplar).
//! 3. **Prometheus** — the text exposition of the live metrics registry
//!    must parse under the golden-format grammar and agree with the
//!    [`Snapshot`] counter-for-counter.
//!
//! Appends a dated entry to `BENCH_flight.json` in the output directory
//! (`--out`, default `results/`). `./ci.sh obs-live` runs this.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kdv_bench::HarnessConfig;
use kdv_core::geom::{Point, Rect};
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};
use kdv_obs::metrics::MetricValue;
use kdv_obs::{ring, IncidentConfig, SloTargets, SloTracker};
use kdv_serve::{
    checksum, Frontend, FrontendConfig, PyramidSpec, ServeConfig, ServeError, ShedReason,
    TileServer, Viewport,
};

const TILE_SIZE: usize = 256;
const BASE_RES: usize = 512;
const MAX_ZOOM: u8 = 2;

/// Bound on the recorder-on/off wall ratio. Ring recording is one
/// `try_lock` plus a slot write per *completed* span — far off the
/// density hot path — so the replay must stay within 10%.
const MAX_RATIO: f64 = 1.10;

fn make_server(points: &[Point], extent: Rect, bandwidth: f64) -> TileServer {
    let pyramid = PyramidSpec::new(extent, TILE_SIZE, BASE_RES, BASE_RES, MAX_ZOOM)
        .expect("valid pyramid geometry");
    let config = ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth,
        weight: 1.0 / points.len().max(1) as f64,
    };
    TileServer::new(pyramid, config, points.to_vec(), 512 << 20, 16)
}

/// The pan trace from `bench_tiles`: 512×512 window stepping 128 px
/// right across the deepest level.
fn pan_trace() -> Vec<Viewport> {
    (0..12)
        .map(|i| Viewport { zoom: MAX_ZOOM, px: i * 128, py: 640, width: 512, height: 512 })
        .collect()
}

/// Cold replay against a fresh server: wall seconds + response checksums.
fn replay_cold(
    points: &[Point],
    extent: Rect,
    bandwidth: f64,
    trace: &[Viewport],
) -> (f64, Vec<u64>) {
    let server = make_server(points, extent, bandwidth);
    let t0 = Instant::now();
    let sums = trace
        .iter()
        .map(|vp| {
            let (grid, _) = server.serve_viewport(vp, 0).expect("trace viewport must be servable");
            checksum(&grid)
        })
        .collect();
    (t0.elapsed().as_secs_f64(), sums)
}

fn median5(mut run: impl FnMut() -> (f64, Vec<u64>)) -> (f64, Vec<u64>) {
    let mut samples: Vec<(f64, Vec<u64>)> = (0..5).map(|_| run()).collect();
    for (_, sums) in &samples[1..] {
        assert_eq!(sums, &samples[0].1, "repeat replays must be bitwise stable");
    }
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    samples.swap_remove(2)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-flight-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads the directory's single incident dump, validating it as
/// Chrome-trace JSON carrying the offending request's span tree.
fn sole_incident(dir: &PathBuf, trigger: &str) -> String {
    let files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("incident dir must exist after the injected failure")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert_eq!(files.len(), 1, "{trigger}: expected exactly one dump, got {files:?}");
    let body = std::fs::read_to_string(&files[0]).expect("read incident");
    kdv_obs::validate_json(&body)
        .unwrap_or_else(|off| panic!("{trigger} dump is not valid JSON at byte {off}"));
    for marker in [
        "\"displayTimeUnit\":\"ms\"",
        "\"traceEvents\":[",
        &format!("\"trigger\":\"{trigger}\""),
        "\"request_id\":1",
        "\"serve.request\"",
        "\"req\":1",
    ] {
        assert!(body.contains(marker), "{trigger} dump missing {marker}: {body}");
    }
    body
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (1_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 11).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;
    let trace = pan_trace();

    println!(
        "flight recorder bench: n={} tile={TILE_SIZE}px base={BASE_RES}x{BASE_RES} \
         max_zoom={MAX_ZOOM} bandwidth={bandwidth} requests={}",
        points.len(),
        trace.len()
    );

    // --- 1. ring overhead: recorder off vs on, bitwise responses ---
    ring::set_recording(false);
    let (ring_off_s, off_sums) = median5(|| replay_cold(&points, extent, bandwidth, &trace));
    let (ring_on_s, on_sums) = median5(|| {
        ring::clear();
        ring::set_recording(true);
        let out = replay_cold(&points, extent, bandwidth, &trace);
        ring::set_recording(false);
        out
    });
    ring::clear();
    assert_eq!(off_sums, on_sums, "flight recorder changed a served response");
    let overhead_ratio = if ring_off_s > 0.0 { ring_on_s / ring_off_s } else { 1.0 };
    println!(
        "pan replay: ring off {:.2}ms, ring on {:.2}ms, ratio {:.3}x (bound {MAX_RATIO}x), \
         responses bitwise-identical",
        ring_off_s * 1e3,
        ring_on_s * 1e3,
        overhead_ratio
    );
    assert!(
        overhead_ratio <= MAX_RATIO,
        "recorder-on replay {overhead_ratio:.3}x slower than off (bound {MAX_RATIO}x)"
    );

    // --- 2a. injected deadline shed -> exactly one incident dump ---
    let shed_dir = fresh_dir("shed");
    ring::clear();
    kdv_obs::arm_incidents(IncidentConfig::new(shed_dir.clone()));
    let fe = Frontend::new(
        Arc::new(make_server(&points, extent, bandwidth)),
        FrontendConfig { workers: 1, deadline: Some(Duration::ZERO), ..FrontendConfig::default() },
    );
    let vp = trace[0];
    // two sheds inside the cooldown: the first dumps, the second must not
    for _ in 0..2 {
        match fe.serve(vp) {
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
    }
    drop(fe);
    kdv_obs::disarm_incidents();
    let body = sole_incident(&shed_dir, "shed.deadline");
    assert!(body.contains("\"shed\":1"), "shed dump must tag the request span: {body}");
    let shed_incidents = 1u64;
    println!("injected deadline shed: one valid incident dump in {}", shed_dir.display());
    let _ = std::fs::remove_dir_all(&shed_dir);

    // --- 2b. injected SLO breach -> exactly one dump with the exemplar ---
    let slo_dir = fresh_dir("slo");
    ring::clear();
    kdv_obs::arm_incidents(IncidentConfig::new(slo_dir.clone()));
    let fe = Frontend::new(
        Arc::new(make_server(&points, extent, bandwidth)),
        FrontendConfig { workers: 1, ..FrontendConfig::default() },
    );
    // 1 ns p99 target: every completion is slow, the windowed p99 crosses
    // the target on the first one — a single breach edge.
    fe.set_slo(Arc::new(SloTracker::uniform(10_000_000_000, SloTargets { p50_ns: 1, p99_ns: 1 })));
    for _ in 0..3 {
        fe.serve(vp).expect("served");
    }
    drop(fe);
    kdv_obs::disarm_incidents();
    let body = sole_incident(&slo_dir, "slo.p99");
    assert!(
        body.contains("\"exemplars\":[{\"request_id\":1,\"class\":\"exact\""),
        "breach dump must carry the offending request's exemplar: {body}"
    );
    let slo_incidents = 1u64;
    println!("injected SLO breach: one valid incident dump with exemplar in {}", slo_dir.display());
    let _ = std::fs::remove_dir_all(&slo_dir);
    ring::clear();

    // --- 3. prometheus export parses and agrees with the snapshot ---
    let snap = kdv_obs::metrics::global().snapshot();
    let text = kdv_obs::prometheus_text(&snap);
    let samples = kdv_obs::prometheus::parse_text(&text)
        .unwrap_or_else(|line| panic!("prometheus output failed to parse at line {line}:\n{text}"));
    let sample_value = |series: &str| {
        samples
            .iter()
            .find(|s| s.series == series)
            .unwrap_or_else(|| panic!("prometheus output missing series {series}"))
            .value
    };
    let mut counters = 0usize;
    for (name, value) in &snap.values {
        match value {
            MetricValue::Counter(v) => {
                counters += 1;
                let got = sample_value(&kdv_obs::prometheus::metric_name(name));
                assert!(
                    got == *v as f64,
                    "prometheus disagrees with snapshot on {name}: {got} != {v}"
                );
            }
            MetricValue::Gauge(v) => {
                let got = sample_value(&kdv_obs::prometheus::metric_name(name));
                assert!(
                    got == *v as f64,
                    "prometheus disagrees with snapshot on {name}: {got} != {v}"
                );
            }
            MetricValue::Histogram(h) => {
                let count =
                    sample_value(&format!("{}_count", kdv_obs::prometheus::metric_name(name)));
                assert!(
                    count == h.count as f64,
                    "prometheus disagrees with snapshot on {name}_count: {count} != {}",
                    h.count
                );
            }
        }
    }
    assert!(counters > 0, "serving must have registered counters to compare");
    println!(
        "prometheus export: {} series parsed, {} snapshot metric(s) agree to the counter",
        samples.len(),
        snap.values.len()
    );

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {},\n      \"requests\": {},\n      \
         \"ring_off_s\": {:.6},\n      \"ring_on_s\": {:.6},\n      \
         \"overhead_ratio\": {overhead_ratio:.4},\n      \"max_ratio\": {MAX_RATIO},\n      \
         \"bitwise\": true,\n      \"shed_incidents\": {shed_incidents},\n      \
         \"slo_incidents\": {slo_incidents},\n      \"prometheus_series\": {}\n    }}",
        kdv_bench::utc_date(now),
        points.len(),
        trace.len(),
        ring_off_s,
        ring_on_s,
        samples.len()
    );
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_flight.json");
    kdv_bench::append_run(&path, &entry);
    println!("wrote {}", path.display());
}
