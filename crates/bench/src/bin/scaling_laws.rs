//! E9 — empirical validation of Table 1's complexity bounds.
//!
//! Fits log–log slopes of measured runtime against each of `X`, `Y` and
//! `n` (holding the other two fixed) for the four SLAM variants plus SCAN.
//! Expected slopes from Table 1 at the default operating point
//! (tall-raster cases exercise RAO):
//!
//! * SCAN: slope ≈ 1 in every variable.
//! * SLAM_BUCKET: slope ≈ 1 in `Y`; sublinear-to-1 in `X`/`n` (the
//!   `X + n` row term splits between the two).
//! * RAO variants: sweeping the *short* dimension, so growing the long
//!   dimension costs only the `max(X,Y)` additive term.

use std::time::{Duration, Instant};

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, HarnessConfig, Table};
use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::{KernelType, Method};
use kdv_data::synth::{generate, SynthConfig};

/// Median-of-3 timing of one configuration.
fn measure(method: &AnyMethod, params: &KdvParams, points: &[Point]) -> f64 {
    let mut samples = [0.0_f64; 3];
    for s in &mut samples {
        let t0 = Instant::now();
        method
            .compute_with_deadline(params, points, Some(t0 + Duration::from_secs(120)))
            .expect("scaling run must complete");
        *s = t0.elapsed().as_secs_f64();
    }
    kdv_obs::stats::median_f64(&samples).expect("three samples")
}

/// Least-squares slope of log(t) against log(v).
fn loglog_slope(vals: &[f64], times: &[f64]) -> f64 {
    let n = vals.len() as f64;
    let xs: Vec<f64> = vals.iter().map(|v| v.ln()).collect();
    let ys: Vec<f64> = times.iter().map(|t| t.ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Scaling laws: empirical log-log slopes vs Table 1", &cfg);

    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let synth = SynthConfig::simple(extent);
    let full: Vec<Point> = generate(&synth, 60_000, 7).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;

    let methods: Vec<(AnyMethod, &str)> = vec![
        (AnyMethod::Scan, "SCAN"),
        (AnyMethod::Slam(Method::SlamSort), "SLAM_SORT"),
        (AnyMethod::Slam(Method::SlamBucket), "SLAM_BUCKET"),
        (AnyMethod::Slam(Method::SlamSortRao), "SLAM_SORT^(RAO)"),
        (AnyMethod::Slam(Method::SlamBucketRao), "SLAM_BUCKET^(RAO)"),
    ];

    let mut table = Table::new(
        "Empirical log-log slopes (runtime vs variable; cf. Table 1)",
        &["Method", "slope vs X", "slope vs Y", "slope vs n"],
    );

    // to keep SCAN tractable, its sweeps use a smaller base problem
    for (method, name) in &methods {
        let scan_like = matches!(method, AnyMethod::Scan);
        let base_n = if scan_like { 4_000 } else { 40_000 };
        let pts = &full[..base_n];
        let (base_x, base_y) = if scan_like { (64, 48) } else { (256, 192) };

        // vary X (Y fixed): tall rasters would trip RAO's transpose, so
        // keep X >= Y to measure the row-sweep regime
        let xs = [1usize, 2, 4, 8].map(|f| base_x * f);
        let mut tx = Vec::new();
        for &x in &xs {
            let grid = GridSpec::new(extent, x, base_y).unwrap();
            let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth);
            tx.push(measure(method, &params, pts));
        }
        let slope_x = loglog_slope(&xs.map(|v| v as f64), &tx);

        // vary Y (X fixed)
        let ys = [1usize, 2, 4, 8].map(|f| base_y * f);
        let mut ty = Vec::new();
        for &y in &ys {
            let grid = GridSpec::new(extent, base_x, y).unwrap();
            let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth);
            ty.push(measure(method, &params, pts));
        }
        let slope_y = loglog_slope(&ys.map(|v| v as f64), &ty);

        // vary n (raster fixed)
        let ns = [1usize, 2, 4, 8].map(|f| base_n / 8 * f);
        let mut tn = Vec::new();
        for &n in &ns {
            let grid = GridSpec::new(extent, base_x, base_y).unwrap();
            let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth);
            tn.push(measure(method, &params, &full[..n]));
        }
        let slope_n = loglog_slope(&ns.map(|v| v as f64), &tn);

        eprintln!("{name}: X^{slope_x:.2} Y^{slope_y:.2} n^{slope_n:.2}");
        table.push_row(vec![
            name.to_string(),
            format!("{slope_x:.2}"),
            format!("{slope_y:.2}"),
            format!("{slope_n:.2}"),
        ]);
    }
    table.emit(&cfg.out_dir, "scaling_laws");
}
