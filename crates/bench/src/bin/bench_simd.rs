//! Scalar vs `f64x4` A/B for the two vectorized hot loops.
//!
//! For each kernel × bandwidth, runs the full SLAM_BUCKET raster twice —
//! once with the SIMD dispatch forced to the scalar path (the
//! paper-faithful fused per-pixel sweep loop), once forced to the `f64x4`
//! path (run-restructured emit + 4-lane evaluation) — with the span
//! recorder live, and attributes time to the two instrumented scopes from
//! the trace: `envelope.fill_simd` (the `b² − dy²` → `sqrt` → bounds
//! computation) and `emit.simd` (the whole sweep pass: event drains plus
//! density emit — both variants record the same scope, so the column is a
//! symmetric comparison). The rest of the raster (bucket scatter,
//! envelope banding) is identical between the two runs and excluded, so
//! the speedup column measures exactly the work the lane layer replaces.
//!
//! Every pair of runs is also checked bitwise — the dispatch contract is
//! that lane selection never changes a single output bit.
//!
//! Asserts the best (kernel, bandwidth) combination reaches
//! [`MIN_SPEEDUP`] on the combined fill+emit time, then appends a dated
//! entry to `BENCH_simd.json` in the output directory (`--out`, default
//! `results/`), accumulating history like the other benches.
//! `./ci.sh simd` runs this.

use kdv_bench::HarnessConfig;
use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::{DensityGrid, GridSpec};
use kdv_core::simd::{with_mode, SimdMode};
use kdv_core::{sweep_bucket, KernelType};
use kdv_data::synth::{generate, SynthConfig};

/// Required speedup of the `f64x4` path over forced-scalar on the
/// combined fill+emit time, at the best measured (kernel, bandwidth).
/// The scalar sweep evaluates one aggregate `diff` + polynomial per
/// pixel; the vector path amortises the `diff` over each event-free run
/// and evaluates 4 pixels per lane group, so small-bandwidth rows (long
/// runs) measure 3–5×. Kept at 2× so CI boxes under load don't flake.
const MIN_SPEEDUP: f64 = 2.0;

struct Sample {
    fill_s: f64,
    emit_s: f64,
    lanes: u64,
    grid: DensityGrid,
}

/// One instrumented raster with the dispatch pinned to `mode`, timing
/// taken from the recorded spans rather than wall clock so only the two
/// swapped loops are counted.
fn run_once(params: &KdvParams, points: &[Point], mode: SimdMode) -> Sample {
    with_mode(mode, || {
        kdv_obs::span::clear();
        kdv_obs::metrics::global().counter("simd.lanes").reset();
        kdv_obs::set_enabled(true);
        let grid = sweep_bucket::compute(params, points).expect("sweep must succeed");
        kdv_obs::set_enabled(false);
        let trace = kdv_obs::span::take_trace();
        assert!(trace.is_balanced(), "span recorder must pair every begin/end");
        let sum = |name: &str| -> f64 {
            trace.events.iter().filter(|e| e.name == name).map(|e| e.dur_ns).sum::<u64>() as f64
                / 1e9
        };
        let lanes = kdv_obs::metrics::global().counter("simd.lanes").get();
        kdv_obs::span::clear();
        Sample { fill_s: sum("envelope.fill_simd"), emit_s: sum("emit.simd"), lanes, grid }
    })
}

/// Interleaved A/B sampling: alternates scalar and `f64x4` runs so clock
/// throttling and cache state drift hit both sides equally, then takes
/// the per-side median on the combined fill+emit seconds (returning the
/// sample at the median so fill/emit stay a consistent pair).
fn median_pair(params: &KdvParams, points: &[Point]) -> (Sample, Sample) {
    const REPS: usize = 7;
    let mut scalar: Vec<Sample> = Vec::with_capacity(REPS);
    let mut simd: Vec<Sample> = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        scalar.push(run_once(params, points, SimdMode::Scalar));
        simd.push(run_once(params, points, SimdMode::Vector));
    }
    let median = |mut samples: Vec<Sample>| -> Sample {
        samples.sort_by(|a, b| {
            (a.fill_s + a.emit_s).partial_cmp(&(b.fill_s + b.emit_s)).expect("finite timings")
        });
        samples.swap_remove(REPS / 2)
    };
    (median(scalar), median(simd))
}

struct Row {
    kernel: KernelType,
    bandwidth: f64,
    scalar_fill_s: f64,
    scalar_emit_s: f64,
    simd_fill_s: f64,
    simd_emit_s: f64,
    lanes: u64,
    speedup: f64,
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (5_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 11).into_iter().map(|r| r.point).collect();
    let grid = GridSpec::new(extent, cfg.resolution.0, cfg.resolution.1).unwrap();

    println!(
        "simd A/B bench: n={} raster={}x{} dispatch={} (forced per run)",
        points.len(),
        grid.res_x,
        grid.res_y,
        kdv_core::simd::mode()
    );
    println!(
        "{:>13} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "kernel", "bandwidth", "scalar fill", "scalar emit", "f64x4 fill", "f64x4 emit", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for kernel in [KernelType::Epanechnikov, KernelType::Quartic] {
        // city-typical widths: the 100–800 band is where interactive KDV
        // maps live (bench_envelope sweeps the same region scale)
        for bandwidth in [25.0, 50.0, 100.0, 200.0] {
            let params =
                KdvParams::new(grid, kernel, bandwidth).with_weight(1.0 / points.len() as f64);
            let (scalar, simd) = median_pair(&params, &points);
            assert_eq!(
                scalar.grid, simd.grid,
                "forced-scalar and f64x4 rasters must be bitwise identical \
                 ({kernel} b={bandwidth})"
            );
            assert_eq!(scalar.lanes, 0, "forced-scalar run must touch no vector lanes");

            let scalar_total = scalar.fill_s + scalar.emit_s;
            let simd_total = simd.fill_s + simd.emit_s;
            let speedup = if simd_total > 0.0 { scalar_total / simd_total } else { 1.0 };
            println!(
                "{:>13} {:>10.0} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>8.2}x",
                kernel.name(),
                bandwidth,
                scalar.fill_s * 1e3,
                scalar.emit_s * 1e3,
                simd.fill_s * 1e3,
                simd.emit_s * 1e3,
                speedup
            );
            rows.push(Row {
                kernel,
                bandwidth,
                scalar_fill_s: scalar.fill_s,
                scalar_emit_s: scalar.emit_s,
                simd_fill_s: simd.fill_s,
                simd_emit_s: simd.emit_s,
                lanes: simd.lanes,
                speedup,
            });
        }
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite speedups"))
        .expect("at least one row");
    println!(
        "best: {} b={} at {:.2}x (required {MIN_SPEEDUP}x); f64x4 detected: {}",
        best.kernel.name(),
        best.bandwidth,
        best.speedup,
        kdv_core::simd::detected()
    );
    assert!(
        best.speedup >= MIN_SPEEDUP,
        "f64x4 fill+emit speedup {:.2}x below the required {MIN_SPEEDUP}x",
        best.speedup
    );

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {},\n      \"res_x\": {},\n      \
         \"res_y\": {},\n      \"vector_isa_detected\": {},\n      \
         \"min_speedup\": {MIN_SPEEDUP},\n      \"best_speedup\": {:.4},\n      \"rows\": [\n",
        kdv_bench::utc_date(now),
        points.len(),
        grid.res_x,
        grid.res_y,
        kdv_core::simd::detected(),
        best.speedup
    );
    for (i, r) in rows.iter().enumerate() {
        entry.push_str(&format!(
            "        {{\"kernel\": \"{}\", \"bandwidth\": {}, \"scalar_fill_s\": {:.6}, \
             \"scalar_emit_s\": {:.6}, \"simd_fill_s\": {:.6}, \"simd_emit_s\": {:.6}, \
             \"simd_lane_pixels\": {}, \"speedup\": {:.4}}}{}\n",
            r.kernel.name(),
            r.bandwidth,
            r.scalar_fill_s,
            r.scalar_emit_s,
            r.simd_fill_s,
            r.simd_emit_s,
            r.lanes,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    entry.push_str("      ]\n    }");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_simd.json");
    kdv_bench::append_run(&path, &entry);
    println!("appended to {}", path.display());
}
