//! Concurrent-serving load benchmark: multi-session trace replay
//! through the worker-pool front end, with the correctness assertions
//! `./ci.sh serve-load` relies on baked in.
//!
//! Four overlapping pan sessions are replayed twice against fresh
//! servers — sequentially (single-threaded ground truth) and
//! concurrently (one closed-loop thread per session through the
//! [`Frontend`]) — and the run **aborts** unless:
//!
//! * every concurrent grid checksum is bitwise-equal to its sequential
//!   twin,
//! * the single-flight duplicate-band counter is zero (no band swept
//!   twice despite the overlap),
//! * bands computed equals the distinct band count of the trace,
//! * concurrent p99 latency stays under a generous cap, and
//! * a deliberately saturated run (1 worker, depth-2 queue) sheds with
//!   explicit `QueueFull` rejections while every accepted request still
//!   completes.
//!
//! Appends one dated entry per run to `BENCH_serve.json` in the output
//! directory (`--out`, default `results/`).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use kdv_bench::HarnessConfig;
use kdv_core::geom::{Point, Rect};
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};
use kdv_serve::replay::latency_quantile_ns;
use kdv_serve::{
    Frontend, FrontendConfig, PyramidSpec, ReplayOutcome, ServeConfig, ServeError, Session,
    SessionRequest, ShedReason, TileServer, Viewport,
};

const TILE_SIZE: usize = 256;
const BASE_RES: usize = 512;
const MAX_ZOOM: u8 = 2;
const P99_CAP_MS: f64 = 2_000.0;

fn make_server(points: &[Point], extent: Rect, bandwidth: f64) -> Arc<TileServer> {
    let pyramid = PyramidSpec::new(extent, TILE_SIZE, BASE_RES, BASE_RES, MAX_ZOOM)
        .expect("valid pyramid geometry");
    let config = ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth,
        weight: 1.0 / points.len().max(1) as f64,
    };
    Arc::new(TileServer::new(pyramid, config, points.to_vec(), 512 << 20, 16))
}

/// Four pan sessions at the deepest zoom, horizontally offset so every
/// session's viewports overlap its neighbours' tile row bands.
fn pan_sessions() -> Vec<Session> {
    (0..4u32)
        .map(|id| Session {
            id,
            requests: (0..6)
                .map(|step| SessionRequest {
                    think_ms: 0,
                    viewport: Viewport {
                        zoom: MAX_ZOOM,
                        px: (id as usize * 64 + step * 128) % 1536,
                        py: 640 + (id as usize % 2) * 128,
                        width: 512,
                        height: 512,
                    },
                })
                .collect(),
        })
        .collect()
}

/// Distinct `(zoom, tile_row)` bands the sessions touch — the exact
/// number of band sweeps an ideal (fully deduplicated) replay performs.
fn distinct_bands(sessions: &[Session]) -> usize {
    let mut bands = HashSet::new();
    for s in sessions {
        for r in &s.requests {
            let vp = &r.viewport;
            for ty in vp.py / TILE_SIZE..=(vp.py + vp.height - 1) / TILE_SIZE {
                bands.insert((vp.zoom, ty));
            }
        }
    }
    bands.len()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (2_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 23).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;

    let sessions = pan_sessions();
    let requests: usize = sessions.iter().map(|s| s.requests.len()).sum();
    let expected_bands = distinct_bands(&sessions);
    println!(
        "serve load bench: n={} sessions={} requests={requests} distinct_bands={expected_bands} \
         tile={TILE_SIZE}px base={BASE_RES}x{BASE_RES} max_zoom={MAX_ZOOM}",
        points.len(),
        sessions.len()
    );

    // --- sequential ground truth ---------------------------------------
    let seq_server = make_server(&points, extent, bandwidth);
    let t0 = Instant::now();
    let seq = kdv_serve::replay_sequential(&seq_server, &sessions, 0);
    let seq_s = t0.elapsed().as_secs_f64();

    // --- concurrent replay through the front end ------------------------
    let conc_server = make_server(&points, extent, bandwidth);
    let frontend = Frontend::new(
        Arc::clone(&conc_server),
        FrontendConfig { workers: 4, queue_depth: 64, deadline: None, threads_per_request: 2 },
    );
    let t0 = Instant::now();
    let conc = kdv_serve::replay_concurrent(&frontend, &sessions, false);
    let conc_s = t0.elapsed().as_secs_f64();

    // correctness gate 1: bitwise equality, request by request
    assert_eq!(seq.len(), conc.len(), "replay record counts diverge");
    for (s, c) in seq.iter().zip(&conc) {
        assert_eq!((s.session, s.seq), (c.session, c.seq), "replay record order diverges");
        assert!(
            matches!(s.outcome, ReplayOutcome::Served { .. }),
            "sequential request failed: {:?}",
            s.outcome
        );
        assert_eq!(
            s.outcome, c.outcome,
            "session {} request {}: concurrent grid bits diverge from sequential",
            s.session, s.seq
        );
    }

    // correctness gate 2: single-flight eliminated every duplicate sweep
    let flights = conc_server.flight_stats();
    assert_eq!(
        flights.duplicate_computes(),
        0,
        "duplicate band computes under overlapping concurrent sessions"
    );
    assert_eq!(
        flights.computed() as usize,
        expected_bands,
        "bands computed must equal the trace's distinct band count"
    );

    // correctness gate 3: tail latency under the (generous) cap
    let p50_ms = kdv_obs::stats::ns_to_ms(latency_quantile_ns(&conc, 0.5));
    let p99_ms = kdv_obs::stats::ns_to_ms(latency_quantile_ns(&conc, 0.99));
    assert!(
        p99_ms < P99_CAP_MS,
        "concurrent p99 {p99_ms:.1} ms breached the {P99_CAP_MS:.0} ms cap"
    );

    println!(
        "sequential {seq_s:.3}s  concurrent {conc_s:.3}s  p50 {p50_ms:.3} ms  p99 {p99_ms:.3} ms"
    );
    println!(
        "bands: {} computed (= distinct), {} joined in flight, 0 duplicates; checksums bitwise-equal",
        flights.computed(),
        flights.joined()
    );

    // --- saturation: overload must shed explicitly, not queue forever ---
    let sat_server = make_server(&points, extent, bandwidth);
    let sat = Frontend::new(
        Arc::clone(&sat_server),
        FrontendConfig { workers: 1, queue_depth: 2, deadline: None, threads_per_request: 1 },
    );
    let burst = Viewport { zoom: MAX_ZOOM, px: 0, py: 0, width: 512, height: 512 };
    let mut accepted = Vec::new();
    for _ in 0..5_000 {
        match sat.submit(burst) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Shed(ShedReason::QueueFull)) => {}
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
        if sat.stats().shed_queue_full() >= 16 {
            break;
        }
    }
    let shed = sat.stats().shed_queue_full();
    assert!(shed > 0, "saturated front end never shed a request");
    for t in accepted {
        t.wait().expect("accepted requests must complete under overload");
    }
    println!(
        "saturation (1 worker, depth-2 queue): {} accepted, {shed} shed with explicit QueueFull",
        sat.stats().submitted()
    );

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {},\n      \"sessions\": {},\n      \"requests\": {requests},\n      \"distinct_bands\": {expected_bands},\n      \"sequential_s\": {seq_s:.6},\n      \"concurrent_s\": {conc_s:.6},\n      \"p50_ms\": {p50_ms:.3},\n      \"p99_ms\": {p99_ms:.3},\n      \"bands_computed\": {},\n      \"bands_joined\": {},\n      \"duplicate_computes\": 0,\n      \"saturation_shed\": {shed}\n    }}",
        kdv_bench::utc_date(now),
        points.len(),
        sessions.len(),
        flights.computed(),
        flights.joined()
    );

    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_serve.json");
    kdv_bench::append_run(&path, &entry);
    println!("appended run to {}", path.display());
}
