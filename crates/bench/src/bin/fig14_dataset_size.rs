//! E3 — paper Figure 14: response time vs dataset size (25/50/75/100%
//! random samples without replacement), default resolution and bandwidth.

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::geom::Point;
use kdv_core::{KernelType, Method};
use kdv_data::sample::sample_fraction;

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 14: response time vs dataset size", &cfg);

    let methods = figure_lineup();
    for cd in CityData::load_all(cfg.scale) {
        let mut headers = vec!["Fraction".to_string(), "n".to_string()];
        headers.extend(methods.iter().map(|m| m.name()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!("Figure 14 — {} (full n={})", cd.city.name(), cd.points.len()),
            &href,
        );
        // default bandwidth is held at the full-dataset Scott value, like
        // the paper ("default resolution size and bandwidth value")
        let params = cd.params(cfg.resolution, KernelType::Epanechnikov);
        for &frac in &[0.25, 0.5, 0.75, 1.0] {
            let sampled: Vec<Point> =
                sample_fraction(&cd.dataset.records, frac, 1234).iter().map(|r| r.point).collect();
            let mut row = vec![format!("{:.0}%", frac * 100.0), sampled.len().to_string()];
            for m in &methods {
                let t = time_method(m, &params, &sampled, cfg.cap);
                row.push(t.cell(cfg.cap_secs()));
                eprintln!(
                    "  {:<14} {:>4.0}% {:<18} {}",
                    cd.city.name(),
                    frac * 100.0,
                    m.name(),
                    row.last().unwrap()
                );
            }
            table.push_row(row);
        }
        let stem = format!("fig14_{}", cd.city.name().to_lowercase().replace(' ', "_"));
        table.emit(&cfg.out_dir, &stem);
    }
}
