//! E4 — paper Figure 15: response time vs bandwidth value (default
//! bandwidth × {0.25, 0.5, 1, 2, 4}), default resolution.

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::{KernelType, Method};

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 15: response time vs bandwidth", &cfg);

    let methods = figure_lineup();
    for cd in CityData::load_all(cfg.scale) {
        let mut headers = vec!["b ratio".to_string(), "b (m)".to_string()];
        headers.extend(methods.iter().map(|m| m.name()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Figure 15 — {} (n={}, default b={:.1} m)",
                cd.city.name(),
                cd.points.len(),
                cd.bandwidth
            ),
            &href,
        );
        for &ratio in &[0.25, 0.5, 1.0, 2.0, 4.0] {
            let mut params = cd.params(cfg.resolution, KernelType::Epanechnikov);
            params.bandwidth = cd.bandwidth * ratio;
            let mut row = vec![format!("{ratio}"), format!("{:.1}", params.bandwidth)];
            for m in &methods {
                let t = time_method(m, &params, &cd.points, cfg.cap);
                row.push(t.cell(cfg.cap_secs()));
                eprintln!(
                    "  {:<14} x{:<5} {:<18} {}",
                    cd.city.name(),
                    ratio,
                    m.name(),
                    row.last().unwrap()
                );
            }
            table.push_row(row);
        }
        let stem = format!("fig15_{}", cd.city.name().to_lowercase().replace(' ', "_"));
        table.emit(&cfg.out_dir, &stem);
    }
}
