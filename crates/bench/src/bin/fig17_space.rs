//! E6 — paper Figure 17: space consumption vs dataset size.
//!
//! Reports each method's auxiliary heap bytes (index structures, samples,
//! sweep buffers) plus the shared output raster, at 25/50/75/100% dataset
//! fractions. The paper's observation — all methods are within the same
//! O(XY + n) envelope — should reappear as same-order byte counts.

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table, Timing};
use kdv_core::geom::Point;
use kdv_core::{KernelType, Method};
use kdv_data::sample::sample_fraction;

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 17: space consumption vs dataset size", &cfg);

    let methods = figure_lineup();
    let raster_bytes = cfg.resolution.0 * cfg.resolution.1 * std::mem::size_of::<f64>();
    println!("shared output raster: {}\n", fmt_bytes(raster_bytes));

    for cd in CityData::load_all(cfg.scale) {
        let mut headers = vec!["Fraction".to_string(), "n".to_string()];
        headers.extend(methods.iter().map(|m| m.name()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!(
                "Figure 17 — {} (aux bytes + raster {})",
                cd.city.name(),
                fmt_bytes(raster_bytes)
            ),
            &href,
        );
        let params = cd.params(cfg.resolution, KernelType::Epanechnikov);
        for &frac in &[0.25, 0.5, 0.75, 1.0] {
            let sampled: Vec<Point> =
                sample_fraction(&cd.dataset.records, frac, 1234).iter().map(|r| r.point).collect();
            let mut row = vec![format!("{:.0}%", frac * 100.0), sampled.len().to_string()];
            for m in &methods {
                let cell = match time_method(m, &params, &sampled, cfg.cap) {
                    Timing::Done { output, .. } => fmt_bytes(output.aux_space_bytes + raster_bytes),
                    Timing::TimedOut => "> cap".to_string(),
                    Timing::Failed(e) => format!("ERR({e})"),
                };
                eprintln!(
                    "  {:<14} {:>4.0}% {:<18} {}",
                    cd.city.name(),
                    frac * 100.0,
                    m.name(),
                    cell
                );
                row.push(cell);
            }
            table.push_row(row);
        }
        let stem = format!("fig17_{}", cd.city.name().to_lowercase().replace(' ', "_"));
        table.emit(&cfg.out_dir, &stem);
    }
}
