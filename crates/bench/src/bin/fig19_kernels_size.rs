//! E8 — paper Figure 19: uniform and quartic kernels on Los Angeles and
//! San Francisco, varying the dataset size.

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::geom::Point;
use kdv_core::{KernelType, Method};
use kdv_data::catalog::City;
use kdv_data::sample::sample_fraction;

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 19: other kernels, varying dataset size", &cfg);

    let methods = figure_lineup();
    for city in [City::LosAngeles, City::SanFrancisco] {
        let cd = CityData::load(city, cfg.scale);
        for kernel in [KernelType::Uniform, KernelType::Quartic] {
            let mut headers = vec!["Fraction".to_string(), "n".to_string()];
            headers.extend(methods.iter().map(|m| m.name()));
            let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let mut table =
                Table::new(format!("Figure 19 — {} / {} kernel", city.name(), kernel), &href);
            let params = cd.params(cfg.resolution, kernel);
            for &frac in &[0.25, 0.5, 0.75, 1.0] {
                let sampled: Vec<Point> = sample_fraction(&cd.dataset.records, frac, 1234)
                    .iter()
                    .map(|r| r.point)
                    .collect();
                let mut row = vec![format!("{:.0}%", frac * 100.0), sampled.len().to_string()];
                for m in &methods {
                    let t = time_method(m, &params, &sampled, cfg.cap);
                    row.push(t.cell(cfg.cap_secs()));
                    eprintln!(
                        "  {:<14} {:<12} {:>4.0}% {:<18} {}",
                        city.name(),
                        kernel.name(),
                        frac * 100.0,
                        m.name(),
                        row.last().unwrap()
                    );
                }
                table.push_row(row);
            }
            let stem =
                format!("fig19_{}_{}", city.name().to_lowercase().replace(' ', "_"), kernel.name());
            table.emit(&cfg.out_dir, &stem);
        }
    }
}
