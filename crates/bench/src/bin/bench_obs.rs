//! Observability overhead benchmark: instrumented vs disabled replay.
//!
//! Replays the canonical pan trace (the same shape `bench_tiles` uses)
//! against a fresh [`TileServer`] twice — once with the span recorder
//! disabled (the shipping default: one relaxed atomic load per span
//! site) and once with it enabled and draining a full Chrome trace —
//! and reports the wall-clock ratio. Also proves the recorder is
//! observation-only: a parallel sweep with spans enabled must be
//! bitwise identical to the same sweep with them disabled.
//!
//! Appends a dated entry to `BENCH_obs.json` in the output directory
//! (`--out`, default `results/`). `./ci.sh obs` runs this and asserts
//! the ratio bound; `tests/bench_results.rs` guards the committed
//! ratio trajectory across entries.

use std::time::Instant;

use kdv_bench::HarnessConfig;
use kdv_core::driver::KdvParams;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::parallel::{compute_parallel, ParallelEngine};
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};
use kdv_serve::{PyramidSpec, ServeConfig, TileServer, Viewport};

const TILE_SIZE: usize = 256;
const BASE_RES: usize = 512;
const MAX_ZOOM: u8 = 2;

/// Generous bound on instrumented/disabled wall ratio. Span recording is
/// a TLS push per begin/end; even fully traced the replay should stay
/// well under this. Kept lenient so CI boxes under load don't flake.
const MAX_RATIO: f64 = 3.0;

fn make_server(points: &[Point], extent: Rect, bandwidth: f64) -> TileServer {
    let pyramid = PyramidSpec::new(extent, TILE_SIZE, BASE_RES, BASE_RES, MAX_ZOOM)
        .expect("valid pyramid geometry");
    let config = ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth,
        weight: 1.0 / points.len().max(1) as f64,
    };
    TileServer::new(pyramid, config, points.to_vec(), 512 << 20, 16)
}

/// The pan trace from `bench_tiles`: 512×512 window stepping 128 px
/// right across the deepest level.
fn pan_trace() -> Vec<Viewport> {
    (0..12)
        .map(|i| Viewport { zoom: MAX_ZOOM, px: i * 128, py: 640, width: 512, height: 512 })
        .collect()
}

/// Cold replay against a fresh server, returning wall seconds.
fn replay_cold(points: &[Point], extent: Rect, bandwidth: f64, trace: &[Viewport]) -> f64 {
    let server = make_server(points, extent, bandwidth);
    let t0 = Instant::now();
    for vp in trace {
        server.serve_viewport(vp, 0).expect("trace viewport must be servable");
    }
    t0.elapsed().as_secs_f64()
}

fn median3(mut run: impl FnMut() -> f64) -> f64 {
    let samples = [run(), run(), run()];
    kdv_obs::stats::median_f64(&samples).expect("three samples")
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (1_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 11).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;
    let trace = pan_trace();

    println!(
        "observability overhead bench: n={} tile={TILE_SIZE}px base={BASE_RES}x{BASE_RES} \
         max_zoom={MAX_ZOOM} bandwidth={bandwidth} requests={}",
        points.len(),
        trace.len()
    );

    // 1. Observation-only check: spans on vs off must not change densities.
    let grid = GridSpec::new(extent, 256, 256).expect("valid grid");
    let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth)
        .with_weight(1.0 / points.len() as f64);
    let plain = compute_parallel(&params, &points, ParallelEngine::Bucket, 4)
        .expect("plain sweep must succeed");
    kdv_obs::span::clear();
    kdv_obs::set_enabled(true);
    let traced = compute_parallel(&params, &points, ParallelEngine::Bucket, 4)
        .expect("traced sweep must succeed");
    kdv_obs::set_enabled(false);
    let recorded = kdv_obs::span::take_trace();
    assert_eq!(plain, traced, "enabling the recorder must not change densities");
    assert!(recorded.is_balanced(), "every span begin must have a matching end");
    assert!(!recorded.events.is_empty(), "instrumented sweep must record spans");
    println!(
        "bitwise check: instrumented sweep identical over {} cells, {} span(s) recorded",
        256 * 256,
        recorded.events.len()
    );

    // 2. Overhead: cold pan replay, recorder off vs on.
    let disabled_s = median3(|| replay_cold(&points, extent, bandwidth, &trace));
    let instrumented_s = median3(|| {
        kdv_obs::span::clear();
        kdv_obs::set_enabled(true);
        let s = replay_cold(&points, extent, bandwidth, &trace);
        kdv_obs::set_enabled(false);
        kdv_obs::span::clear();
        s
    });
    let ratio = if disabled_s > 0.0 { instrumented_s / disabled_s } else { 1.0 };
    println!(
        "pan replay: disabled {:.2}ms, instrumented {:.2}ms, ratio {:.3}x (bound {MAX_RATIO}x)",
        disabled_s * 1e3,
        instrumented_s * 1e3,
        ratio
    );
    assert!(
        ratio <= MAX_RATIO,
        "instrumented replay {ratio:.3}x slower than disabled (bound {MAX_RATIO}x)"
    );

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {},\n      \"requests\": {},\n      \
         \"spans\": {},\n      \"disabled_s\": {:.6},\n      \"instrumented_s\": {:.6},\n      \
         \"ratio\": {:.4},\n      \"max_ratio\": {MAX_RATIO}\n    }}",
        kdv_bench::utc_date(now),
        points.len(),
        trace.len(),
        recorded.events.len(),
        disabled_s,
        instrumented_s,
        ratio
    );
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_obs.json");
    kdv_bench::append_run(&path, &entry);
    println!("wrote {}", path.display());
}
