//! Approximate-overview-tier benchmark: cold overview latency of a
//! coreset-backed tile server vs the exact server on the same pyramid,
//! with the correctness assertions `./ci.sh coreset` relies on baked in.
//!
//! The same overview workload (the full zoom-0 raster plus all four
//! zoom-1 quadrants) is served cold from two fresh servers — one exact,
//! one with the coreset tier enabled below zoom 2 — and the run
//! **aborts** unless:
//!
//! * every overview pixel of the coreset server is within the advertised
//!   ε of the exact server's raster (the certificate holds end to end
//!   through tiling and caching),
//! * the deep-zoom raster (zoom 2, exact tier on both servers) is
//!   bitwise-identical between the two — the approximation never bleeds
//!   across the tier boundary, and
//! * at `n ≥ 10⁶` the coreset server answers the cold overview at least
//!   5× faster than the exact server (below that, the sweep's `O(Y·X)`
//!   pixel term dominates `O(Y·n)` and the speedup is reported but not
//!   gated).
//!
//! Appends one dated entry per run to `BENCH_coreset.json` in the output
//! directory (`--out`, default `results/`).

use std::time::Instant;

use kdv_bench::HarnessConfig;
use kdv_core::geom::{Point, Rect};
use kdv_core::{DensityGrid, KernelType};
use kdv_coreset::CoresetMethod;
use kdv_data::synth::{generate, SynthConfig};
use kdv_serve::{OverviewConfig, PyramidSpec, ServeConfig, TileServer, TileTier, Viewport};

const TILE_SIZE: usize = 256;
const BASE_RES: usize = 512;
const MAX_ZOOM: u8 = 2;
/// Zoom levels at or below this are coreset-served.
const OVERVIEW_ZOOM: u8 = 1;
const TARGET_REL: f64 = 0.01;
const MIN_SPEEDUP: f64 = 5.0;
/// The speedup gate only applies at paper-relevant dataset sizes; the
/// sup-error and bitwise gates apply at every size.
const SPEEDUP_FLOOR_N: usize = 1_000_000;

fn pyramid(extent: Rect) -> PyramidSpec {
    PyramidSpec::new(extent, TILE_SIZE, BASE_RES, BASE_RES, MAX_ZOOM)
        .expect("valid pyramid geometry")
}

fn serve_config(n: usize, bandwidth: f64) -> ServeConfig {
    ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth,
        weight: 1.0 / n.max(1) as f64,
    }
}

/// The cold overview workload: the whole of every coreset-served level.
fn overview_viewports() -> Vec<Viewport> {
    let mut vps = vec![Viewport { zoom: 0, px: 0, py: 0, width: BASE_RES, height: BASE_RES }];
    for (qx, qy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
        vps.push(Viewport {
            zoom: 1,
            px: qx * BASE_RES,
            py: qy * BASE_RES,
            width: BASE_RES,
            height: BASE_RES,
        });
    }
    vps
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (2_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 23).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;
    let n = points.len();

    println!(
        "coreset bench: n={n} tile={TILE_SIZE}px base={BASE_RES}x{BASE_RES} \
         max_zoom={MAX_ZOOM} overview_zoom<={OVERVIEW_ZOOM} target_rel={TARGET_REL}"
    );

    // --- the two servers -------------------------------------------------
    let exact_server =
        TileServer::new(pyramid(extent), serve_config(n, bandwidth), points.clone(), 512 << 20, 16);
    let t0 = Instant::now();
    let coreset_server = TileServer::with_overview_coreset(
        pyramid(extent),
        serve_config(n, bandwidth),
        points.clone(),
        512 << 20,
        16,
        OverviewConfig {
            max_zoom: OVERVIEW_ZOOM,
            method: CoresetMethod::Grid,
            target_rel_epsilon: TARGET_REL,
            seed: 7,
        },
    )
    .expect("coreset tier construction");
    let build_s = t0.elapsed().as_secs_f64();

    let info = coreset_server.tier_info(0);
    assert_eq!(info.tier, TileTier::Coreset, "zoom 0 must be coreset-served");
    let epsilon = info.epsilon.expect("coreset tier advertises epsilon");
    let coreset_size = info.coreset_size.expect("coreset tier advertises size");
    println!(
        "coreset: {coreset_size} of {n} points ({:.2}%), advertised eps {epsilon:.3e}, \
         built in {build_s:.3}s",
        100.0 * coreset_size as f64 / n.max(1) as f64
    );

    // --- cold overview: exact vs coreset ---------------------------------
    let vps = overview_viewports();
    let t0 = Instant::now();
    let exact_grids: Vec<DensityGrid> =
        vps.iter().map(|vp| exact_server.serve_viewport(vp, 4).expect("exact serve").0).collect();
    let exact_overview_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let coreset_grids: Vec<DensityGrid> = vps
        .iter()
        .map(|vp| {
            let (grid, _, info) = coreset_server.serve_viewport_tiered(vp, 4).expect("tier serve");
            assert_eq!(info.tier, TileTier::Coreset, "zoom {} must be coreset-served", vp.zoom);
            grid
        })
        .collect();
    let coreset_overview_s = t0.elapsed().as_secs_f64();

    // correctness gate 1: the advertised ε bounds every overview pixel
    let mut sup_error = 0.0_f64;
    for (e, c) in exact_grids.iter().zip(&coreset_grids) {
        for (a, r) in c.values().iter().zip(e.values()) {
            sup_error = sup_error.max((a - r).abs());
        }
    }
    assert!(
        sup_error <= epsilon,
        "overview sup-error {sup_error:.3e} exceeds the advertised eps {epsilon:.3e}"
    );

    // correctness gate 2: the exact tier is untouched by the coreset
    let deep = Viewport { zoom: 2, px: 768, py: 768, width: BASE_RES, height: BASE_RES };
    let (deep_exact, _) = exact_server.serve_viewport(&deep, 4).expect("deep exact serve");
    let (deep_coreset, _, deep_info) =
        coreset_server.serve_viewport_tiered(&deep, 4).expect("deep tier serve");
    assert_eq!(deep_info.tier, TileTier::Exact, "zoom 2 must be exact");
    assert_eq!(deep_exact, deep_coreset, "deep zoom must stay bitwise-identical");

    // correctness gate 3: the overview pays off at paper-relevant sizes
    let speedup = exact_overview_s / coreset_overview_s.max(1e-12);
    println!(
        "cold overview ({} viewports): exact {exact_overview_s:.3}s  coreset \
         {coreset_overview_s:.3}s  speedup {speedup:.1}x  sup-error {sup_error:.3e} (<= eps)",
        vps.len()
    );
    if n >= SPEEDUP_FLOOR_N {
        assert!(
            speedup >= MIN_SPEEDUP,
            "overview speedup {speedup:.2}x below the {MIN_SPEEDUP:.0}x gate at n={n}"
        );
    } else {
        println!("(speedup gate skipped: n={n} < {SPEEDUP_FLOOR_N})");
    }

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {n},\n      \"method\": \"{}\",\n      \
         \"target_rel\": {TARGET_REL},\n      \"epsilon\": {epsilon:e},\n      \
         \"coreset_size\": {coreset_size},\n      \"sup_error\": {sup_error:e},\n      \
         \"build_s\": {build_s:.6},\n      \"exact_overview_s\": {exact_overview_s:.6},\n      \
         \"coreset_overview_s\": {coreset_overview_s:.6},\n      \"speedup\": {speedup:.3},\n      \
         \"deep_bitwise\": true\n    }}",
        kdv_bench::utc_date(now),
        CoresetMethod::Grid.name(),
    );

    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_coreset.json");
    kdv_bench::append_run(&path, &entry);
    println!("appended run to {}", path.display());
}
