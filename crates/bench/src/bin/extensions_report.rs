//! E11 companion — one-shot speedup report for the beyond-the-paper
//! extensions (shared-envelope multi-bandwidth, incremental pan, weighted
//! sweep overhead, row-parallel scaling), printed as tables for
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p kdv-bench --release --bin extensions_report [--scale F]
//! ```

use std::time::Instant;

use kdv_bench::{banner, format_secs, CityData, HarnessConfig, Table};
use kdv_core::driver::KdvParams;
use kdv_core::grid::GridSpec;
use kdv_core::multi_bandwidth::compute_multi_bandwidth;
use kdv_core::parallel::{compute_parallel, compute_parallel_with_report, ParallelEngine};
use kdv_core::weighted::compute_weighted;
use kdv_core::{rao, sweep_bucket, KernelType};
use kdv_data::catalog::City;
use kdv_explore::incremental::pan_render;

fn time<F: FnMut()>(mut f: F) -> f64 {
    // median of 3
    let mut samples = [0.0_f64; 3];
    for s in &mut samples {
        let t0 = Instant::now();
        f();
        *s = t0.elapsed().as_secs_f64();
    }
    kdv_obs::stats::median_f64(&samples).expect("three samples")
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Extensions report: multi-bandwidth, incremental pan, weighted, parallel", &cfg);

    let cd = CityData::load(City::NewYork, cfg.scale);
    let params = cd.params(cfg.resolution, KernelType::Epanechnikov);
    let pts = &cd.points;

    // 1. multi-bandwidth sharing
    let ratios = [0.25, 0.5, 1.0, 2.0, 4.0];
    let bandwidths: Vec<f64> = ratios.iter().map(|r| cd.bandwidth * r).collect();
    let t_shared = time(|| {
        compute_multi_bandwidth(&params, pts, &bandwidths).unwrap();
    });
    let t_solo = time(|| {
        for &b in &bandwidths {
            let mut p = params;
            p.bandwidth = b;
            sweep_bucket::compute(&p, pts).unwrap();
        }
    });
    let mut t1 = Table::new(
        format!("Multi-bandwidth ({} bandwidths, New York n={})", bandwidths.len(), pts.len()),
        &["Strategy", "Time (s)", "Speedup"],
    );
    t1.push_row(vec!["independent runs".into(), format_secs(t_solo), "1.00x".into()]);
    t1.push_row(vec![
        "shared envelope".into(),
        format_secs(t_shared),
        format!("{:.2}x", t_solo / t_shared),
    ]);
    t1.emit(&cfg.out_dir, "ext_multi_bandwidth");

    // 2. incremental pan
    let prev = rao::compute_bucket(&params, pts).unwrap();
    let mut t2 = Table::new(
        "Incremental pan re-render (vertical, whole-pixel shifts)",
        &["Shift (rows)", "Incremental (s)", "Full (s)", "Speedup"],
    );
    for rows in [4usize, 16, 64] {
        let region = params.grid.region.translated(0.0, rows as f64 * params.grid.gap_y());
        let next_grid = GridSpec::new(region, params.grid.res_x, params.grid.res_y).unwrap();
        let next_params = KdvParams { grid: next_grid, ..params };
        let t_inc = time(|| {
            pan_render(&prev, &params.grid, &next_params, pts).unwrap();
        });
        let t_full = time(|| {
            rao::compute_bucket(&next_params, pts).unwrap();
        });
        t2.push_row(vec![
            rows.to_string(),
            format_secs(t_inc),
            format_secs(t_full),
            format!("{:.2}x", t_full / t_inc),
        ]);
    }
    t2.emit(&cfg.out_dir, "ext_incremental_pan");

    // 3. weighted overhead
    let weights = vec![1.0_f64; pts.len()];
    let t_plain = time(|| {
        sweep_bucket::compute(&params, pts).unwrap();
    });
    let t_weighted = time(|| {
        compute_weighted(&params, pts, &weights).unwrap();
    });
    let mut t3 = Table::new("Weighted sweep overhead", &["Engine", "Time (s)", "Relative"]);
    t3.push_row(vec!["plain bucket".into(), format_secs(t_plain), "1.00x".into()]);
    t3.push_row(vec![
        "weighted bucket".into(),
        format_secs(t_weighted),
        format!("{:.2}x", t_weighted / t_plain),
    ]);
    t3.emit(&cfg.out_dir, "ext_weighted");

    // 4. work-stealing row-parallel scaling (with telemetry)
    let mut t4 = Table::new(
        "Work-stealing row-parallel scaling (single-core hosts show ~1x)",
        &["Threads", "Time (s)", "Rows/s", "Speedup vs 1", "Imbalance"],
    );
    let rows = params.grid.res_y;
    let t_one = time(|| {
        compute_parallel(&params, pts, ParallelEngine::Bucket, 1).unwrap();
    });
    for threads in [1usize, 2, 4, 8] {
        let t = time(|| {
            compute_parallel(&params, pts, ParallelEngine::Bucket, threads).unwrap();
        });
        let (_, report) =
            compute_parallel_with_report(&params, pts, ParallelEngine::Bucket, threads).unwrap();
        t4.push_row(vec![
            threads.to_string(),
            format_secs(t),
            format!("{:.0}", rows as f64 / t),
            format!("{:.2}x", t_one / t),
            format!("{:.2}", report.imbalance()),
        ]);
    }
    t4.emit(&cfg.out_dir, "ext_parallel");

    // telemetry snapshot at the largest thread count — the rows-per-worker
    // distribution documents that scheduling is dynamic, not banded
    let (_, report) =
        compute_parallel_with_report(&params, pts, ParallelEngine::Bucket, 8).unwrap();
    println!("\n{}", report.summary());
}
