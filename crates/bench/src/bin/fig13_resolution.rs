//! E2 — paper Figure 13: response time vs resolution size, default
//! bandwidth, four datasets.
//!
//! The paper sweeps 320×240 → 2560×1920; the scaled harness sweeps the
//! same 4× ladder starting from a quarter of the configured base
//! resolution. Methods follow the paper's Figure-13 line-up (the inferior
//! SLAM variants are omitted after Table 7, as in the paper).

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::{KernelType, Method};

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 13: response time vs resolution", &cfg);

    // 4x ladder like the paper's 320x240 .. 2560x1920
    let (bx, by) = cfg.resolution;
    let resolutions: Vec<(usize, usize)> = (0..4).map(|i| ((bx / 2) << i, (by / 2) << i)).collect();

    let methods = figure_lineup();
    for cd in CityData::load_all(cfg.scale) {
        let mut headers = vec!["Resolution".to_string()];
        headers.extend(methods.iter().map(|m| m.name()));
        let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table =
            Table::new(format!("Figure 13 — {} (n={})", cd.city.name(), cd.points.len()), &href);
        for &(rx, ry) in &resolutions {
            let params = cd.params((rx, ry), KernelType::Epanechnikov);
            let mut row = vec![format!("{rx}x{ry}")];
            for m in &methods {
                let t = time_method(m, &params, &cd.points, cfg.cap);
                row.push(t.cell(cfg.cap_secs()));
                eprintln!(
                    "  {:<14} {:>9}x{:<4} {:<18} {}",
                    cd.city.name(),
                    rx,
                    ry,
                    m.name(),
                    row.last().unwrap()
                );
            }
            table.push_row(row);
        }
        let stem = format!("fig13_{}", cd.city.name().to_lowercase().replace(' ', "_"));
        table.emit(&cfg.out_dir, &stem);
    }
}
