//! E1 — paper Table 7: response time of all ten methods on the four
//! datasets under the default settings (default resolution, Scott's-rule
//! bandwidth).
//!
//! ```text
//! cargo run -p kdv-bench --release --bin table7 [--scale F] [--res WxH] [--cap-secs S]
//! ```

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::KernelType;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Table 7: response time (sec) of all methods, default settings", &cfg);

    let methods = AnyMethod::paper_lineup();
    let mut headers: Vec<&str> = vec!["Dataset", "n", "b (m)"];
    let names: Vec<String> = methods.iter().map(|m| m.name()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(
        format!(
            "Table 7 (scaled: n = paper x {}, res {}x{})",
            cfg.scale, cfg.resolution.0, cfg.resolution.1
        ),
        &headers,
    );

    for cd in CityData::load_all(cfg.scale) {
        let params = cd.params(cfg.resolution, KernelType::Epanechnikov);
        let mut row = vec![
            cd.city.name().to_string(),
            cd.points.len().to_string(),
            format!("{:.1}", cd.bandwidth),
        ];
        for m in &methods {
            let t = time_method(m, &params, &cd.points, cfg.cap);
            row.push(t.cell(cfg.cap_secs()));
            eprintln!("  {:<14} {:<18} {}", cd.city.name(), m.name(), row.last().unwrap());
        }
        table.push_row(row);
    }
    table.emit(&cfg.out_dir, "table7");
}
