//! E7 — paper Figure 18: uniform and quartic kernels on Los Angeles and
//! San Francisco, varying the resolution size.

use kdv_baselines::AnyMethod;
use kdv_bench::{banner, time_method, CityData, HarnessConfig, Table};
use kdv_core::{KernelType, Method};
use kdv_data::catalog::City;

fn figure_lineup() -> Vec<AnyMethod> {
    vec![
        AnyMethod::Scan,
        AnyMethod::RqsKd,
        AnyMethod::RqsBall,
        AnyMethod::ZOrder { sample_fraction: 0.05 },
        AnyMethod::Akde { epsilon: 1e-6 },
        AnyMethod::Quad,
        AnyMethod::Slam(Method::SlamBucketRao),
    ]
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 18: other kernels, varying resolution", &cfg);

    let methods = figure_lineup();
    let (bx, by) = cfg.resolution;
    let resolutions: Vec<(usize, usize)> = (0..4).map(|i| ((bx / 2) << i, (by / 2) << i)).collect();

    for city in [City::LosAngeles, City::SanFrancisco] {
        let cd = CityData::load(city, cfg.scale);
        for kernel in [KernelType::Uniform, KernelType::Quartic] {
            let mut headers = vec!["Resolution".to_string()];
            headers.extend(methods.iter().map(|m| m.name()));
            let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            let mut table = Table::new(
                format!("Figure 18 — {} / {} kernel (n={})", city.name(), kernel, cd.points.len()),
                &href,
            );
            for &(rx, ry) in &resolutions {
                let params = cd.params((rx, ry), kernel);
                let mut row = vec![format!("{rx}x{ry}")];
                for m in &methods {
                    let t = time_method(m, &params, &cd.points, cfg.cap);
                    row.push(t.cell(cfg.cap_secs()));
                    eprintln!(
                        "  {:<14} {:<12} {:>4}x{:<4} {:<18} {}",
                        city.name(),
                        kernel.name(),
                        rx,
                        ry,
                        m.name(),
                        row.last().unwrap()
                    );
                }
                table.push_row(row);
            }
            let stem =
                format!("fig18_{}_{}", city.name().to_lowercase().replace(' ', "_"), kernel.name());
            table.emit(&cfg.out_dir, &stem);
        }
    }
}
