//! Streaming ingestion benchmark: the pan trace replayed under a live
//! point feed, patch arm vs recompute arm, with the correctness
//! assertions `./ci.sh stream` relies on baked in.
//!
//! One pan sequence at the deepest zoom is replayed over `GENERATIONS`
//! delta batches against two streaming servers fed the identical
//! append schedule — one patching cached tiles with each sealed batch,
//! one with patching disabled (stale bands recompute from the epoch
//! base). The run **aborts** unless:
//!
//! * every response checksum of the patch arm is bitwise-equal to its
//!   recompute twin (and the settled grids compare equal outright),
//! * the single-flight duplicate counter is zero in both arms,
//! * the patch arm actually patched (and the recompute arm never did),
//! * patching is at least [`MIN_SPEEDUP`]× faster over the live phase.
//!
//! Appends one dated entry per run to `BENCH_stream.json` in the output
//! directory (`--out`, default `results/`).

use std::time::Instant;

use kdv_bench::HarnessConfig;
use kdv_core::digest::grid_checksum;
use kdv_core::geom::{Point, Rect};
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};
use kdv_serve::{LiveConfig, LiveTileServer, PyramidSpec, ServeConfig, Viewport};

const TILE_SIZE: usize = 256;
const BASE_RES: usize = 512;
const MAX_ZOOM: u8 = 2;
const GENERATIONS: usize = 12;
const BATCH: usize = 8;
const MIN_SPEEDUP: f64 = 5.0;

/// The pan trace: five zoom-2 steps across the middle band rows, 128 px
/// per step (the same shape as `traces/pan.trace`).
fn pan_steps() -> Vec<Viewport> {
    (0..5)
        .map(|step| Viewport { zoom: MAX_ZOOM, px: step * 128, py: 384, width: 512, height: 512 })
        .collect()
}

struct ArmResult {
    checksums: Vec<u64>,
    live_s: f64,
    server: LiveTileServer,
}

/// Replays the identical feed (warm at generation 0, then `batches`
/// appends each followed by the full pan) against a fresh server; only
/// the live phase after the warm-up is timed.
fn run_arm(
    patching: bool,
    points: &[Point],
    extent: Rect,
    bandwidth: f64,
    batches: &[Vec<Point>],
    steps: &[Viewport],
) -> ArmResult {
    let pyramid = PyramidSpec::new(extent, TILE_SIZE, BASE_RES, BASE_RES, MAX_ZOOM)
        .expect("valid pyramid geometry");
    let config = ServeConfig {
        dataset: 1,
        kernel: KernelType::Epanechnikov,
        bandwidth,
        weight: 1.0 / points.len().max(1) as f64,
    };
    let server = LiveTileServer::new(
        pyramid,
        config,
        LiveConfig { patching, compact_every: None },
        points.to_vec(),
        512 << 20,
        16,
    );
    for vp in steps {
        server.serve_viewport(vp, 4).expect("warm serve");
    }
    let mut checksums = Vec::with_capacity(batches.len() * steps.len());
    let t0 = Instant::now();
    for batch in batches {
        server.append(batch);
        for vp in steps {
            let (grid, _) = server.serve_viewport(vp, 4).expect("live serve");
            checksums.push(grid_checksum(&grid));
        }
    }
    ArmResult { checksums, live_s: t0.elapsed().as_secs_f64(), server }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (2_000_000.0 * cfg.scale).round().max(10_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 23).into_iter().map(|r| r.point).collect();
    let bandwidth = 400.0;
    let steps = pan_steps();
    let batches: Vec<Vec<Point>> = (0..GENERATIONS)
        .map(|g| {
            generate(&SynthConfig::simple(extent), BATCH, 1_000 + g as u64)
                .into_iter()
                .map(|r| r.point)
                .collect()
        })
        .collect();
    let requests = GENERATIONS * steps.len();
    println!(
        "stream bench: n={} generations={GENERATIONS} batch={BATCH} requests={requests} \
         tile={TILE_SIZE}px base={BASE_RES}x{BASE_RES} max_zoom={MAX_ZOOM}",
        points.len()
    );

    let patch = run_arm(true, &points, extent, bandwidth, &batches, &steps);
    let recompute = run_arm(false, &points, extent, bandwidth, &batches, &steps);

    // correctness gate 1: bitwise equality, request by request
    assert_eq!(patch.checksums.len(), recompute.checksums.len());
    for (i, (p, r)) in patch.checksums.iter().zip(&recompute.checksums).enumerate() {
        assert_eq!(p, r, "request {i}: patched response bits diverge from the cold recompute arm");
    }
    // and the settled grids compare equal outright, not just by digest
    let vp = steps[0];
    let (settled_patch, _) = patch.server.serve_viewport(&vp, 4).expect("settled serve");
    let (settled_cold, _) = recompute.server.serve_viewport(&vp, 4).expect("settled serve");
    assert_eq!(settled_patch, settled_cold, "settled grids diverge between arms");

    // correctness gate 2: single-flight discipline held in both arms
    assert_eq!(
        patch.server.flight_stats().duplicate_computes(),
        0,
        "duplicate band computes in the patch arm"
    );
    assert_eq!(
        recompute.server.flight_stats().duplicate_computes(),
        0,
        "duplicate band computes in the recompute arm"
    );

    // correctness gate 3: the arms exercised the paths they claim to
    let patched_bands = patch.server.live_stats().patched_bands();
    let folded = patch.server.live_stats().folded_batches();
    assert!(patched_bands > 0, "patch arm never patched a band");
    assert_eq!(recompute.server.live_stats().patched_bands(), 0, "recompute arm must not patch");

    // the headline: patching beats rebuild-from-scratch by >= MIN_SPEEDUP
    let speedup = recompute.live_s / patch.live_s.max(1e-9);
    println!(
        "live phase: patch {:.3}s  recompute {:.3}s  speedup {speedup:.1}x  \
         ({patched_bands} bands patched, {folded} batches folded)",
        patch.live_s, recompute.live_s
    );
    assert!(speedup >= MIN_SPEEDUP, "patch speedup {speedup:.2}x below the {MIN_SPEEDUP:.0}x gate");

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "    {{\n      \"date\": \"{}\",\n      \"n\": {},\n      \"generations\": {GENERATIONS},\n      \"batch\": {BATCH},\n      \"requests\": {requests},\n      \"patch_s\": {:.6},\n      \"recompute_s\": {:.6},\n      \"speedup\": {speedup:.2},\n      \"patched_bands\": {patched_bands},\n      \"folded_batches\": {folded},\n      \"duplicate_computes\": 0\n    }}",
        kdv_bench::utc_date(now),
        points.len(),
        patch.live_s,
        recompute.live_s,
    );
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_stream.json");
    kdv_bench::append_run(&path, &entry);
    println!("appended run to {}", path.display());
}
