//! Bandwidth sweep of envelope extraction: full-scan vs banded index.
//!
//! For each bandwidth, times (a) extraction alone over every raster row —
//! `O(Y·n)` for the scan vs `O(Y·(log n + |E(k)|))` for the banded index —
//! and (b) the end-to-end SLAM_BUCKET raster through both extraction
//! paths. A third instrumented pass records the per-phase span totals
//! (`envelope.fill_simd`, `emit.simd`) with the dispatch forced to the
//! scalar and the `f64x4` path in turn, so the JSON carries the emit loop
//! as its own phase alongside the wall-clock totals. Emits
//! `BENCH_envelope.json` into the output directory (`--out`, default
//! `results/`).
//!
//! Expected shape: banded wins by orders of magnitude at small bandwidth
//! (almost every point is out of band) and converges to parity as the
//! bandwidth approaches the region size (every point is in band, so both
//! paths do the same interval fills).

use std::time::Instant;

use kdv_bench::HarnessConfig;
use kdv_core::driver::{sweep_grid, sweep_grid_scan, KdvParams, SweepContext};
use kdv_core::envelope::EnvelopeBuffer;
use kdv_core::geom::{Point, Rect};
use kdv_core::grid::GridSpec;
use kdv_core::sweep_bucket::BucketSweep;
use kdv_core::KernelType;
use kdv_data::synth::{generate, SynthConfig};

/// Median-of-5 timing in seconds.
fn median_secs(mut run: impl FnMut()) -> f64 {
    let mut samples = [0.0_f64; 5];
    for s in &mut samples {
        let t0 = Instant::now();
        run();
        *s = t0.elapsed().as_secs_f64();
    }
    kdv_obs::stats::median_f64(&samples).expect("five samples")
}

struct Row {
    bandwidth: f64,
    mean_band: f64,
    extract_scan_s: f64,
    extract_banded_s: f64,
    total_scan_s: f64,
    total_banded_s: f64,
    fill_scalar_s: f64,
    emit_scalar_s: f64,
    fill_simd_s: f64,
    emit_simd_s: f64,
}

/// One instrumented banded raster with the SIMD dispatch pinned to
/// `mode`; returns the (`envelope.fill_simd`, `emit.simd`) span totals in
/// seconds — the phase attribution the wall-clock columns can't give.
fn phase_secs(params: &KdvParams, points: &[Point], mode: kdv_core::simd::SimdMode) -> (f64, f64) {
    kdv_core::simd::with_mode(mode, || {
        kdv_obs::span::clear();
        kdv_obs::set_enabled(true);
        let mut engine = BucketSweep::new(params.kernel, params.bandwidth, params.weight);
        sweep_grid(params, points, &mut engine).expect("sweep must succeed");
        kdv_obs::set_enabled(false);
        let trace = kdv_obs::span::take_trace();
        kdv_obs::span::clear();
        let sum = |name: &str| -> f64 {
            trace.events.iter().filter(|e| e.name == name).map(|e| e.dur_ns).sum::<u64>() as f64
                / 1e9
        };
        (sum("envelope.fill_simd"), sum("emit.simd"))
    })
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let extent = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
    let n = (5_000_000.0 * cfg.scale).round().max(1_000.0) as usize;
    let points: Vec<Point> =
        generate(&SynthConfig::simple(extent), n, 11).into_iter().map(|r| r.point).collect();
    let grid = GridSpec::new(extent, cfg.resolution.0, cfg.resolution.1).unwrap();

    println!(
        "envelope extraction bench: n={} raster={}x{} region=10000x10000",
        points.len(),
        grid.res_x,
        grid.res_y
    );
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "bandwidth",
        "mean|E(k)|",
        "extract scan",
        "extract band",
        "total scan",
        "total band",
        "emit scalar",
        "emit f64x4"
    );

    let mut rows: Vec<Row> = Vec::new();
    for bandwidth in [25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 10_000.0] {
        let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth)
            .with_weight(1.0 / points.len() as f64);
        let ctx = SweepContext::new(&params, &points).unwrap();
        let mut envelope = EnvelopeBuffer::for_points(points.len());

        let mut total_intervals = 0usize;
        let extract_scan_s = median_secs(|| {
            total_intervals = 0;
            for &k in &ctx.ks {
                total_intervals += envelope.fill(&ctx.points, bandwidth, k).len();
            }
        });
        let extract_banded_s = median_secs(|| {
            for &k in &ctx.ks {
                let band = ctx.index.band(bandwidth, k);
                if band.is_empty() {
                    continue;
                }
                envelope.fill_band(&ctx.index, band, bandwidth, k);
            }
        });

        let mut reference = None;
        let total_scan_s = median_secs(|| {
            let mut engine = BucketSweep::new(params.kernel, bandwidth, params.weight);
            reference = Some(sweep_grid_scan(&params, &points, &mut engine).unwrap());
        });
        let mut banded_grid = None;
        let total_banded_s = median_secs(|| {
            let mut engine = BucketSweep::new(params.kernel, bandwidth, params.weight);
            banded_grid = Some(sweep_grid(&params, &points, &mut engine).unwrap());
        });
        assert_eq!(banded_grid, reference, "banded output must be bitwise identical");

        let (fill_scalar_s, emit_scalar_s) =
            phase_secs(&params, &points, kdv_core::simd::SimdMode::Scalar);
        let (fill_simd_s, emit_simd_s) =
            phase_secs(&params, &points, kdv_core::simd::SimdMode::Vector);

        let mean_band = total_intervals as f64 / grid.res_y as f64;
        println!(
            "{:>10.0} {:>12.1} {:>13.2}ms {:>13.2}ms {:>11.2}ms {:>11.2}ms {:>10.2}ms {:>10.2}ms",
            bandwidth,
            mean_band,
            extract_scan_s * 1e3,
            extract_banded_s * 1e3,
            total_scan_s * 1e3,
            total_banded_s * 1e3,
            emit_scalar_s * 1e3,
            emit_simd_s * 1e3
        );
        rows.push(Row {
            bandwidth,
            mean_band,
            extract_scan_s,
            extract_banded_s,
            total_scan_s,
            total_banded_s,
            fill_scalar_s,
            emit_scalar_s,
            fill_simd_s,
            emit_simd_s,
        });
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n\": {},\n  \"res_x\": {},\n  \"res_y\": {},\n  \"region\": [0, 0, 10000, 10000],\n  \"kernel\": \"epanechnikov\",\n  \"rows\": [\n",
        points.len(),
        grid.res_x,
        grid.res_y
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bandwidth\": {}, \"mean_band\": {:.2}, \"extract_scan_s\": {:.6}, \"extract_banded_s\": {:.6}, \"total_scan_s\": {:.6}, \"total_banded_s\": {:.6}, \"fill_scalar_s\": {:.6}, \"emit_scalar_s\": {:.6}, \"fill_simd_s\": {:.6}, \"emit_simd_s\": {:.6}}}{}\n",
            r.bandwidth,
            r.mean_band,
            r.extract_scan_s,
            r.extract_banded_s,
            r.total_scan_s,
            r.total_banded_s,
            r.fill_scalar_s,
            r.emit_scalar_s,
            r.fill_simd_s,
            r.emit_simd_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("BENCH_envelope.json");
    std::fs::write(&path, json).expect("write BENCH_envelope.json");
    println!("wrote {}", path.display());
}
