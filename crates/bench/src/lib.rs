//! # kdv-bench — experiment harness for the SLAM paper
//!
//! One binary per table/figure of the paper's evaluation (Section 4),
//! sharing the machinery here: a scaled dataset cache, a timing runner
//! with the paper's response-time cap, and paper-shaped table printers
//! that also persist TSV rows under `results/`.
//!
//! The harness runs *scaled-down* workloads by default so the whole grid
//! finishes on a laptop: dataset sizes are `--scale` × the paper's row
//! counts (default 0.01) and the default raster is 320×240 (the smallest
//! size in the paper's Figure-13 sweep). Relative method ordering — the
//! quantity the paper's claims are about — is preserved; absolute seconds
//! are not comparable to the paper's i7/C++ numbers. Pass `--scale 1.0
//! --res 1280x960 --cap-secs 14400` to reproduce the full-size protocol.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use kdv_baselines::{AnyMethod, MethodOutput};
use kdv_core::driver::KdvParams;
use kdv_core::geom::Point;
use kdv_core::grid::GridSpec;
use kdv_core::{KdvError, KernelType, Rect};
use kdv_data::catalog::City;
use kdv_data::record::Dataset;

/// Harness configuration parsed from command-line arguments.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset scale factor relative to the paper's sizes.
    pub scale: f64,
    /// Per-run response-time cap (the paper used 14,400 s).
    pub cap: Duration,
    /// Default raster resolution `(X, Y)`.
    pub resolution: (usize, usize),
    /// Output directory for TSV result rows.
    pub out_dir: PathBuf,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.01,
            cap: Duration::from_secs(60),
            resolution: (320, 240),
            out_dir: PathBuf::from("results"),
        }
    }
}

impl HarnessConfig {
    /// Parses `--scale F`, `--cap-secs S`, `--res WxH`, `--out DIR` from
    /// `std::env::args`, falling back to defaults.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.scale = v;
                    }
                    i += 2;
                }
                "--cap-secs" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        cfg.cap = Duration::from_secs_f64(v);
                    }
                    i += 2;
                }
                "--res" => {
                    if let Some(r) = args.get(i + 1).and_then(|s| parse_resolution(s)) {
                        cfg.resolution = r;
                    }
                    i += 2;
                }
                "--out" => {
                    if let Some(d) = args.get(i + 1) {
                        cfg.out_dir = PathBuf::from(d);
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
        cfg
    }

    /// The cap in seconds, for report headers.
    pub fn cap_secs(&self) -> f64 {
        self.cap.as_secs_f64()
    }
}

/// Parses `"320x240"`-style resolution strings.
pub fn parse_resolution(s: &str) -> Option<(usize, usize)> {
    let (x, y) = s.split_once(['x', 'X'])?;
    Some((x.trim().parse().ok()?, y.trim().parse().ok()?))
}

/// A generated city dataset with its derived experiment defaults.
pub struct CityData {
    /// Which city this synthesises.
    pub city: City,
    /// The generated events.
    pub dataset: Dataset,
    /// Bare location points (cached).
    pub points: Vec<Point>,
    /// MBR of the points.
    pub mbr: Rect,
    /// Scott's-rule bandwidth over the full point set.
    pub bandwidth: f64,
}

impl CityData {
    /// Generates the dataset for `city` at `scale` and derives defaults.
    pub fn load(city: City, scale: f64) -> Self {
        let dataset = city.dataset(scale);
        let points = dataset.points();
        let mbr = dataset.mbr();
        let bandwidth = kdv_data::scott_bandwidth(&points);
        Self { city, dataset, points, mbr, bandwidth }
    }

    /// Loads all four cities of Table 5.
    pub fn load_all(scale: f64) -> Vec<CityData> {
        City::ALL.iter().map(|&c| Self::load(c, scale)).collect()
    }

    /// Default experiment parameters over this city's MBR.
    pub fn params(&self, resolution: (usize, usize), kernel: KernelType) -> KdvParams {
        let grid = GridSpec::new(self.mbr, resolution.0, resolution.1)
            .expect("city MBR is non-degenerate");
        KdvParams::new(grid, kernel, self.bandwidth)
            .with_weight(1.0 / self.points.len().max(1) as f64)
    }
}

/// Outcome of timing one method run.
#[derive(Debug)]
pub enum Timing {
    /// Completed within the cap.
    Done {
        /// Wall-clock seconds.
        secs: f64,
        /// The raster + space statistics.
        output: MethodOutput,
    },
    /// Hit the response-time cap (reported like the paper's `> 14400`).
    TimedOut,
    /// Failed for another reason.
    Failed(KdvError),
}

impl Timing {
    /// Paper-style cell text: seconds, `> cap`, or `ERR`.
    pub fn cell(&self, cap_secs: f64) -> String {
        match self {
            Timing::Done { secs, .. } => format_secs(*secs),
            Timing::TimedOut => format!("> {}", format_secs(cap_secs)),
            Timing::Failed(e) => format!("ERR({e})"),
        }
    }

    /// Seconds when completed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Timing::Done { secs, .. } => Some(*secs),
            _ => None,
        }
    }
}

/// Runs `method` once under the cap and reports the timing.
pub fn time_method(
    method: &AnyMethod,
    params: &KdvParams,
    points: &[Point],
    cap: Duration,
) -> Timing {
    let start = Instant::now();
    let deadline = Some(start + cap);
    match method.compute_with_deadline(params, points, deadline) {
        Ok(output) => Timing::Done { secs: start.elapsed().as_secs_f64(), output },
        Err(KdvError::DeadlineExceeded) => Timing::TimedOut,
        Err(e) => Timing::Failed(e),
    }
}

/// Formats seconds with sensible precision (ms below 1 s).
pub fn format_secs(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0}")
    } else if secs >= 1.0 {
        format!("{secs:.2}")
    } else {
        format!("{:.2}ms", secs * 1e3)
    }
}

/// A printable experiment table that also persists as TSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "| {c:w$} ", w = w);
            }
            s.push('|');
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push('|');
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout and appends a TSV copy under `out_dir`.
    pub fn emit(&self, out_dir: &Path, file_stem: &str) {
        println!("{}", self.render());
        if let Err(e) = self.save_tsv(out_dir, file_stem) {
            eprintln!("warning: could not persist {file_stem}.tsv: {e}");
        }
    }

    /// Writes `out_dir/<file_stem>.tsv`.
    pub fn save_tsv(&self, out_dir: &Path, file_stem: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        let mut text = String::new();
        let _ = writeln!(text, "{}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(text, "{}", row.join("\t"));
        }
        std::fs::write(out_dir.join(format!("{file_stem}.tsv")), text)
    }
}

/// Days-to-civil conversion (Howard Hinnant's algorithm) for dated JSON
/// entries — no chrono in the dependency budget.
pub fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let secs = unix_secs % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// Appends `entry` to the `"runs"` array of `path`, creating the file on
/// first use. The writers control the exact shape, so the append is a
/// suffix splice rather than a JSON parse; `tests/bench_results.rs`
/// re-validates the whole file after every bench run.
pub fn append_run(path: &Path, entry: &str) {
    const SUFFIX: &str = "\n  ]\n}\n";
    let fresh = format!("{{\n  \"runs\": [\n{entry}{SUFFIX}");
    match std::fs::read_to_string(path) {
        Ok(existing) if existing.ends_with(SUFFIX) => {
            let mut text = existing;
            text.truncate(text.len() - SUFFIX.len());
            text.push_str(",\n");
            text.push_str(entry);
            text.push_str(SUFFIX);
            std::fs::write(path, text).unwrap_or_else(|e| panic!("append {}: {e}", path.display()));
        }
        _ => {
            std::fs::write(path, fresh).unwrap_or_else(|e| panic!("write {}: {e}", path.display()))
        }
    }
}

/// Prints the standard experiment banner (settings provenance).
pub fn banner(name: &str, cfg: &HarnessConfig) {
    println!(
        "== {name} ==\n\
         scale={} (paper sizes x scale), default res={}x{}, cap={}s\n\
         (synthetic stand-in datasets; see DESIGN.md for the substitution rationale)\n",
        cfg.scale,
        cfg.resolution.0,
        cfg.resolution.1,
        cfg.cap_secs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_resolution_formats() {
        assert_eq!(parse_resolution("320x240"), Some((320, 240)));
        assert_eq!(parse_resolution("1280X960"), Some((1280, 960)));
        assert_eq!(parse_resolution("junk"), None);
        assert_eq!(parse_resolution("12x"), None);
    }

    #[test]
    fn format_secs_ranges() {
        assert_eq!(format_secs(0.0123), "12.30ms");
        assert_eq!(format_secs(2.5), "2.50");
        assert_eq!(format_secs(123.4), "123");
    }

    #[test]
    fn table_render_alignment_and_tsv() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("# demo"));
        assert!(text.contains("| a "));
        let dir = std::env::temp_dir().join("kdv_bench_test");
        t.save_tsv(&dir, "demo").unwrap();
        let tsv = std::fs::read_to_string(dir.join("demo.tsv")).unwrap();
        assert_eq!(tsv, "a\tbbbb\n1\t2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timing_cells() {
        assert_eq!(Timing::TimedOut.cell(60.0), "> 60.00");
        assert!(Timing::Failed(KdvError::InvalidBandwidth(0.0)).cell(60.0).starts_with("ERR"));
    }

    #[test]
    fn city_data_defaults_are_consistent() {
        let cd = CityData::load(City::Seattle, 0.001);
        assert_eq!(cd.points.len(), cd.dataset.len());
        assert!(cd.bandwidth > 0.0);
        let p = cd.params((32, 24), KernelType::Epanechnikov);
        assert_eq!(p.grid.res_x, 32);
        assert!((p.weight * cd.points.len() as f64 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_method_completes_small_run() {
        let cd = CityData::load(City::Seattle, 0.0005);
        let params = cd.params((16, 12), KernelType::Epanechnikov);
        let t = time_method(
            &AnyMethod::Slam(kdv_core::Method::SlamBucketRao),
            &params,
            &cd.points,
            Duration::from_secs(30),
        );
        assert!(t.secs().is_some());
    }
}
