//! The span recorder: lock-free per-thread begin/end event buffers with
//! RAII guards.
//!
//! Recording path: [`span`] checks one global `AtomicBool`; when the
//! recorder is disabled that check is the *entire* cost (plus an inert
//! guard whose `Drop` takes the same one branch). When enabled, the guard
//! pushes a `Begin` event into a thread-local `Vec` and its `Drop` pushes
//! the matching `End` — no locks, no allocation beyond the `Vec`'s
//! amortised growth, no cross-thread traffic on the hot path.
//!
//! Collection path: a thread's buffer drains into the global sink when
//! the thread exits (thread-local destructor) or when the thread calls
//! [`flush_thread`] explicitly (the main thread never "exits" before the
//! process does, so exporters flush it by hand). [`take_trace`] pairs the
//! per-thread begin/end streams into complete spans; RAII guarantees the
//! per-thread streams are properly nested, and the pairing reports any
//! unmatched events instead of guessing.
//!
//! Timestamps are nanoseconds since the process-wide epoch (the first
//! time any recorder API observes the clock), so spans from different
//! threads share one timeline.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Maximum arguments a single raw event carries; a paired [`TraceEvent`]
/// merges the begin and end argument sets, so it holds up to twice this.
pub const MAX_RAW_ARGS: usize = 2;

/// A small inline `(&'static str, u64)` argument set (no allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanArgs {
    len: u8,
    items: [(&'static str, u64); 2 * MAX_RAW_ARGS],
}

impl SpanArgs {
    /// Adds an argument; silently drops arguments past the inline
    /// capacity (observability must never panic the observed code).
    pub fn push(&mut self, key: &'static str, value: u64) {
        if (self.len as usize) < self.items.len() {
            self.items[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// The recorded `(key, value)` pairs.
    pub fn as_slice(&self) -> &[(&'static str, u64)] {
        &self.items[..self.len as usize]
    }

    /// Whether no arguments were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn merged(&self, other: &SpanArgs) -> SpanArgs {
        let mut out = *self;
        for &(k, v) in other.as_slice() {
            out.push(k, v);
        }
        out
    }
}

/// Whether a raw event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawKind {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One raw begin/end event as recorded in a thread buffer.
#[derive(Debug, Clone, Copy)]
pub struct RawEvent {
    /// Static span name (the stable registry in the README).
    pub name: &'static str,
    /// Begin or end.
    pub kind: RawKind,
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Arguments attached to this side of the span.
    pub args: SpanArgs,
}

/// One drained thread buffer: the recording thread's id plus its events
/// in chronological order.
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Recorder-assigned thread id (dense, starts at 0, stable for the
    /// thread's lifetime).
    pub tid: u64,
    /// The thread's events in the order they were recorded.
    pub events: Vec<RawEvent>,
}

/// One complete (begin-matched-with-end) span.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Static span name.
    pub name: &'static str,
    /// Recording thread id.
    pub tid: u64,
    /// Start, nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Begin-side then end-side arguments.
    pub args: SpanArgs,
}

/// A paired trace: complete spans plus counts of events the pairing
/// could not match (always zero under RAII usage; exposed so tests can
/// assert it).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Complete spans, ordered by thread then start time.
    pub events: Vec<TraceEvent>,
    /// `Begin` events with no matching `End` (a guard leaked or a thread
    /// buffer was drained mid-span).
    pub unmatched_begins: usize,
    /// `End` events with no matching `Begin`.
    pub unmatched_ends: usize,
}

impl Trace {
    /// Whether every begin found its end.
    pub fn is_balanced(&self) -> bool {
        self.unmatched_begins == 0 && self.unmatched_ends == 0
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<ThreadEvents>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EXCLUSIVE: Mutex<()> = Mutex::new(());
static DROPPED: crate::metrics::Counter = crate::metrics::Counter::new();

/// Nanoseconds since the process-wide recorder epoch (the first time any
/// recorder API observed the clock). The shared timeline of the span
/// recorder, the flight-recorder rings and the windowed metrics.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Events lost by the observability layer itself (TLS-teardown drops in
/// the span recorder, flight-recorder ring contention) — the
/// `obs.dropped_events` counter. Zero in steady state; the phase table
/// surfaces it when not.
pub fn dropped_events() -> u64 {
    DROPPED.get()
}

/// Counts `n` lost events into [`dropped_events`] and the global
/// `obs.dropped_events` metrics counter.
pub(crate) fn note_dropped(n: u64) {
    DROPPED.add(n);
    crate::metrics::global().counter("obs.dropped_events").add(n);
}

fn lock_sink() -> MutexGuard<'static, Vec<ThreadEvents>> {
    // A panic while holding the sink only interrupts event collection,
    // never the observed computation — recover the data instead of
    // poisoning every later export.
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

struct TlsBuf {
    tid: u64,
    events: Vec<RawEvent>,
}

impl TlsBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let drained = ThreadEvents { tid: self.tid, events: std::mem::take(&mut self.events) };
        lock_sink().push(drained);
    }
}

impl Drop for TlsBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<TlsBuf> = RefCell::new(TlsBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn record(name: &'static str, kind: RawKind, args: SpanArgs) {
    let ts_ns = now_ns();
    // If the thread is in TLS teardown the event is dropped — losing a
    // span beats aborting the process inside a destructor — but the loss
    // is *counted* (`obs.dropped_events`), never silent.
    let recorded = BUF.try_with(|b| {
        if let Ok(mut b) = b.try_borrow_mut() {
            b.events.push(RawEvent { name, kind, ts_ns, args });
            true
        } else {
            false
        }
    });
    if !recorded.unwrap_or(false) {
        note_dropped(1);
    }
}

/// Turns recording on or off process-wide. Spans opened while enabled
/// still record their `End` after disabling (the guard captured its
/// active state at open), so traces stay balanced across the switch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the recorder is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII span guard: records `Begin` at creation (when enabled) and `End`
/// at drop. With both the trace sink and the flight-recorder ring off,
/// the cost is one relaxed load per recorder at creation and one branch
/// each at drop.
#[must_use = "a span guard measures the scope it lives in"]
pub struct SpanGuard {
    name: &'static str,
    args: SpanArgs,
    active: bool,
    /// Begin timestamp + begin-side args, captured only while the flight
    /// recorder is on; `Drop` turns them into one completed ring event.
    ring: Option<(u64, SpanArgs)>,
}

impl SpanGuard {
    /// Attaches an argument to the span's `End` event — for quantities
    /// only known at scope exit (an envelope size, an eviction count).
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.active || self.ring.is_some() {
            self.args.push(key, value);
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            record(self.name, RawKind::End, self.args);
        }
        if let Some((ts_ns, begin_args)) = self.ring {
            crate::ring::record_completed(
                self.name,
                ts_ns,
                now_ns().saturating_sub(ts_ns),
                begin_args.merged(&self.args),
            );
        }
    }
}

#[inline]
fn open(name: &'static str, begin_args: SpanArgs) -> SpanGuard {
    let active = enabled();
    if active {
        record(name, RawKind::Begin, begin_args);
    }
    let ring = if crate::ring::recording() { Some((now_ns(), begin_args)) } else { None };
    SpanGuard { name, args: SpanArgs::default(), active, ring }
}

/// Opens a span. `name` must be `'static` (the stable span registry —
/// see the README's Observability section).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open(name, SpanArgs::default())
}

/// Opens a span with one argument on the `Begin` event.
#[inline]
pub fn span1(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    let mut args = SpanArgs::default();
    args.push(key, value);
    open(name, args)
}

/// Opens a span with two arguments on the `Begin` event.
#[inline]
pub fn span2(
    name: &'static str,
    k1: &'static str,
    v1: u64,
    k2: &'static str,
    v2: u64,
) -> SpanGuard {
    let mut args = SpanArgs::default();
    args.push(k1, v1);
    args.push(k2, v2);
    open(name, args)
}

/// Drains the calling thread's buffer into the global sink. Exporters
/// call this on the main thread before [`take_trace`]; worker threads
/// drain automatically when they exit.
pub fn flush_thread() {
    let _ = BUF.try_with(|b| {
        if let Ok(mut b) = b.try_borrow_mut() {
            b.flush();
        }
    });
}

/// Takes every drained thread buffer out of the sink (flushing the
/// calling thread first), grouped by thread id with per-thread
/// chronological order preserved.
pub fn take_raw() -> Vec<ThreadEvents> {
    flush_thread();
    let drained: Vec<ThreadEvents> = std::mem::take(&mut *lock_sink());
    // A thread that flushed more than once appears as multiple entries;
    // concatenate them (arrival order == per-thread chronological order).
    let mut by_tid: Vec<ThreadEvents> = Vec::new();
    for part in drained {
        match by_tid.iter_mut().find(|t| t.tid == part.tid) {
            Some(existing) => existing.events.extend(part.events),
            None => by_tid.push(part),
        }
    }
    by_tid.sort_by_key(|t| t.tid);
    by_tid
}

/// Takes the recorded events and pairs them into complete spans.
///
/// RAII guards nest properly within a thread, so pairing is a per-thread
/// stack: `Begin` pushes, `End` pops its matching `Begin` (same name at
/// the top of the stack) and emits one [`TraceEvent`] whose arguments are
/// the begin-side then end-side sets. Events that cannot be matched are
/// counted, never silently dropped into a wrong pairing.
pub fn take_trace() -> Trace {
    let mut trace = Trace::default();
    for thread in take_raw() {
        let mut stack: Vec<RawEvent> = Vec::new();
        for event in thread.events {
            match event.kind {
                RawKind::Begin => stack.push(event),
                RawKind::End => {
                    if stack.last().map(|b| b.name) == Some(event.name) {
                        let begin = stack.pop().expect("checked non-empty");
                        trace.events.push(TraceEvent {
                            name: begin.name,
                            tid: thread.tid,
                            ts_ns: begin.ts_ns,
                            dur_ns: event.ts_ns.saturating_sub(begin.ts_ns),
                            args: begin.args.merged(&event.args),
                        });
                    } else {
                        trace.unmatched_ends += 1;
                    }
                }
            }
        }
        trace.unmatched_begins += stack.len();
    }
    trace.events.sort_by_key(|e| (e.tid, e.ts_ns));
    trace
}

/// Discards everything recorded so far (does not change the enabled
/// flag). Long-running hosts that only sample occasionally call this
/// between windows so the sink cannot grow without bound.
pub fn clear() {
    let _ = take_raw();
}

/// Serializes tests that toggle the process-global recorder. Every test
/// that calls [`set_enabled`] must hold this guard for its whole body;
/// the mutex recovers from poisoning so one failing test cannot wedge
/// the rest of the suite.
pub fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        clear();
        {
            let mut g = span1("test.disabled", "k", 1);
            g.arg("v", 2);
        }
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn spans_pair_with_args_merged() {
        let _x = exclusive();
        set_enabled(true);
        clear();
        {
            let mut g = span2("test.outer", "a", 1, "b", 2);
            {
                let _inner = span("test.inner");
            }
            g.arg("c", 3);
        }
        set_enabled(false);
        let trace = take_trace();
        assert!(trace.is_balanced(), "{trace:?}");
        assert_eq!(trace.events.len(), 2);
        let outer = trace.events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner = trace.events.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(outer.args.as_slice(), &[("a", 1), ("b", 2), ("c", 3)]);
        assert!(inner.args.is_empty());
        // inner nests within outer on the shared timeline
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[test]
    fn worker_threads_drain_on_exit() {
        let _x = exclusive();
        set_enabled(true);
        clear();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _g = span("test.worker");
                });
            }
        });
        {
            let _g = span("test.main");
        }
        set_enabled(false);
        let trace = take_trace();
        assert!(trace.is_balanced());
        assert_eq!(trace.events.iter().filter(|e| e.name == "test.worker").count(), 3);
        let worker_tids: std::collections::BTreeSet<u64> =
            trace.events.iter().filter(|e| e.name == "test.worker").map(|e| e.tid).collect();
        assert_eq!(worker_tids.len(), 3, "each worker thread gets its own tid");
    }

    #[test]
    fn span_opened_before_disable_still_closes() {
        let _x = exclusive();
        set_enabled(true);
        clear();
        let g = span("test.straddle");
        set_enabled(false);
        drop(g);
        let trace = take_trace();
        assert!(trace.is_balanced());
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].name, "test.straddle");
    }

    #[test]
    fn args_overflow_is_dropped_not_panicked() {
        let mut args = SpanArgs::default();
        for i in 0..10 {
            args.push("k", i);
        }
        assert_eq!(args.as_slice().len(), 2 * MAX_RAW_ARGS);
    }

    #[test]
    fn clear_discards_pending_events() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _g = span("test.discarded");
        }
        clear();
        set_enabled(false);
        assert!(take_trace().events.is_empty());
    }
}
