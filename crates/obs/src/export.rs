//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`),
//! a flat metrics-snapshot JSON, a human-readable per-phase summary
//! table, and the hand-rolled JSON well-formedness validator the smoke
//! tests share (no JSON dependency in the budget).

use crate::metrics::{bucket_upper_bound, MetricValue, Snapshot};
use crate::span::Trace;
use std::fmt::Write as _;

pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_args(out: &mut String, args: &[(&'static str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        let _ = write!(out, "\":{v}");
    }
    out.push('}');
}

/// Serializes a paired [`Trace`] as Chrome trace-event JSON: one
/// complete (`"ph":"X"`) event per span with microsecond `ts`/`dur`,
/// plus a `thread_name` metadata event per recorder thread so Perfetto
/// labels the tracks. Thread id 0 is the recorder's first thread (the
/// main thread in the CLI).
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    push_trace_events(&mut out, trace);
    out.push_str("]}\n");
    out
}

/// Appends the comma-separated `traceEvents` array body (thread-name
/// metadata + `"ph":"X"` complete events, no brackets) — shared by
/// [`chrome_trace_json`] and the flight recorder's incident dumps.
pub(crate) fn push_trace_events(out: &mut String, trace: &Trace) {
    let mut first = true;
    let mut tids: Vec<u64> = trace.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        if !first {
            out.push(',');
        }
        first = false;
        let label = if tid == 0 { "main".to_string() } else { format!("worker-{tid}") };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
    }
    for e in &trace.events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_json(e.name, out);
        let ts_us = e.ts_ns as f64 / 1000.0;
        let dur_us = e.dur_ns as f64 / 1000.0;
        let _ = write!(
            out,
            "\",\"cat\":\"kdv\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\
             \"pid\":1,\"tid\":{}",
            e.tid
        );
        if !e.args.is_empty() {
            out.push_str(",\"args\":");
            push_args(out, e.args.as_slice());
        }
        out.push('}');
    }
}

/// Serializes a metrics [`Snapshot`] as flat JSON: counters and gauges
/// as integers, histograms as objects with exact `count`/`sum`/`min`/
/// `max`/`mean` plus the non-empty log2 buckets as `[upper_bound,
/// count]` pairs.
pub fn metrics_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in snapshot.values.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  \"");
        escape_json(name, &mut out);
        out.push_str("\": ");
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"mean\": {:.3}, \"p50_le\": {}, \"p95_le\": {}, \"buckets\": [",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.mean(),
                    h.quantile_upper_bound(0.5),
                    h.quantile_upper_bound(0.95)
                );
                let mut first = true;
                for (b, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(out, "[{}, {c}]", bucket_upper_bound(b));
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

struct PhaseRow {
    name: &'static str,
    count: u64,
    total_ns: u64,
    max_ns: u64,
    durations: Vec<u64>,
    threads: Vec<u64>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the per-phase summary table: one row per span name with
/// count, total/mean/p95/max duration and the number of distinct
/// threads that recorded it. Rows are ordered by total time descending
/// — the profile reads top-down.
pub fn phase_summary(trace: &Trace) -> String {
    let mut rows: Vec<PhaseRow> = Vec::new();
    for e in &trace.events {
        let row = match rows.iter_mut().find(|r| r.name == e.name) {
            Some(r) => r,
            None => {
                rows.push(PhaseRow {
                    name: e.name,
                    count: 0,
                    total_ns: 0,
                    max_ns: 0,
                    durations: Vec::new(),
                    threads: Vec::new(),
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.count += 1;
        row.total_ns = row.total_ns.saturating_add(e.dur_ns);
        row.max_ns = row.max_ns.max(e.dur_ns);
        row.durations.push(e.dur_ns);
        if !row.threads.contains(&e.tid) {
            row.threads.push(e.tid);
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "phase", "count", "total", "mean", "p95", "max", "threads"
    );
    for r in &rows {
        let mean = r.total_ns / r.count.max(1);
        let p95 = crate::stats::percentile_u64(&r.durations, 0.95).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8}",
            r.name,
            r.count,
            fmt_ns(r.total_ns),
            fmt_ns(mean),
            fmt_ns(p95),
            fmt_ns(r.max_ns),
            r.threads.len()
        );
    }
    if trace.unmatched_begins > 0 || trace.unmatched_ends > 0 {
        let _ = writeln!(
            out,
            "warning: unmatched spans ({} begins, {} ends)",
            trace.unmatched_begins, trace.unmatched_ends
        );
    }
    let dropped = crate::span::dropped_events();
    if dropped > 0 {
        let _ = writeln!(
            out,
            "warning: {dropped} event(s) dropped by the recorder (obs.dropped_events)"
        );
    }
    out
}

/// Minimal recursive-descent JSON well-formedness check (objects,
/// arrays, strings with escapes, numbers, true/false/null). Returns the
/// byte offset that failed, if any. Shared by the CI smoke tests over
/// committed `results/*.json` and the trace/metrics golden tests.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize, depth: usize) -> Result<(), usize> {
        if depth > 64 {
            return Err(*i);
        }
        ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    ws(b, i);
                    string(b, i)?;
                    ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(*i);
                    }
                    *i += 1;
                    value(b, i, depth + 1)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i, depth + 1)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                // lenient number scan: digits, sign, dot, exponent
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                if *i == start {
                    Err(start)
                } else {
                    Ok(())
                }
            }
            _ => Err(*i),
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
        if b.get(*i) != Some(&b'"') {
            return Err(*i);
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'\\' => *i += 2,
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                _ => *i += 1,
            }
        }
        Err(*i)
    }
    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
        if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
            *i += lit.len();
            Ok(())
        } else {
            Err(*i)
        }
    }
    value(b, &mut i, 0)?;
    ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanArgs, Trace, TraceEvent};

    fn sample_trace() -> Trace {
        let mut args = SpanArgs::default();
        args.push("row", 3);
        Trace {
            events: vec![
                TraceEvent { name: "row.sweep", tid: 0, ts_ns: 1_000, dur_ns: 2_500, args },
                TraceEvent {
                    name: "row.sweep",
                    tid: 1,
                    ts_ns: 1_200,
                    dur_ns: 1_500,
                    args: SpanArgs::default(),
                },
                TraceEvent {
                    name: "envelope.fill",
                    tid: 1,
                    ts_ns: 900,
                    dur_ns: 200,
                    args: SpanArgs::default(),
                },
            ],
            unmatched_begins: 0,
            unmatched_ends: 0,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_schema_fields() {
        let json = chrome_trace_json(&sample_trace());
        validate_json(&json).unwrap_or_else(|off| panic!("invalid JSON at byte {off}: {json}"));
        for key in ["\"traceEvents\"", "\"ph\":\"X\"", "\"ts\":", "\"dur\":", "\"tid\":1"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // metadata track names for both threads
        assert!(json.contains("\"name\":\"main\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        // args serialized as integers
        assert!(json.contains("\"args\":{\"row\":3}"));
    }

    #[test]
    fn empty_trace_serializes_cleanly() {
        let json = chrome_trace_json(&Trace::default());
        validate_json(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn metrics_json_is_valid_and_flat() {
        let r = crate::metrics::Registry::new();
        r.counter("cache.hits").add(12);
        r.gauge("cache.bytes").set(4096);
        let h = r.histogram("sweep.fill_ns");
        h.record(500);
        h.record(3_000);
        let json = metrics_json(&r.snapshot());
        validate_json(&json).unwrap_or_else(|off| panic!("invalid JSON at byte {off}: {json}"));
        assert!(json.contains("\"cache.hits\": 12"));
        assert!(json.contains("\"cache.bytes\": 4096"));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"sum\": 3500"));
        assert!(json.contains("\"buckets\": [[511, 1], [4095, 1]]"));
    }

    #[test]
    fn phase_summary_orders_by_total_time() {
        let table = phase_summary(&sample_trace());
        let sweep_pos = table.find("row.sweep").unwrap();
        let fill_pos = table.find("envelope.fill").unwrap();
        assert!(sweep_pos < fill_pos, "largest total first:\n{table}");
        // 2 threads recorded row.sweep
        let sweep_line = table.lines().find(|l| l.starts_with("row.sweep")).unwrap();
        assert!(sweep_line.trim_end().ends_with('2'), "{sweep_line}");
        assert!(!table.contains("warning"));
    }

    #[test]
    fn phase_summary_flags_unbalanced_traces() {
        let mut trace = sample_trace();
        trace.unmatched_begins = 1;
        assert!(phase_summary(&trace).contains("unmatched spans (1 begins, 0 ends)"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json(r#"{"a": [1, 2.5e-3, "x\"y", true, null]}"#).is_ok());
        assert!(validate_json("{\n  \"runs\": []\n}\n").is_ok());
        assert!(validate_json(r#"{"a": }"#).is_err());
        assert!(validate_json(r#"{"a": 1} trailing"#).is_err());
        assert!(validate_json(r#"["unterminated]"#).is_err());
    }
}
