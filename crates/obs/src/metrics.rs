//! Metrics registry: named counters, gauges and log2 histograms with
//! cheap atomic recording and diffable point-in-time snapshots.
//!
//! Counters are **saturating** — they stick at `u64::MAX` instead of
//! wrapping — matching the tile-cache counter semantics in `kdv-serve`
//! (a cache that has served `u64::MAX` hits should report "a lot", not
//! wrap back to zero mid-soak). Histograms use 65 fixed power-of-two
//! buckets so recording is a `leading_zeros` and one relaxed
//! `fetch_add`; no allocation, no locks on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: bucket 0 holds exactly `{0}`, bucket
/// `i >= 1` holds `[2^(i-1), 2^i - 1]`, so bucket 64 ends at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A saturating atomic counter (sticks at `u64::MAX`, never wraps).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds 1, saturating at `u64::MAX`.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => {
                    if seen == u64::MAX {
                        return;
                    }
                    cur = seen;
                }
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test hook; production snapshots diff instead).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// Sets an explicit value (used by the rollover test hook in the
    /// tile cache to force near-`u64::MAX` states).
    pub fn force(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Index of the bucket a value falls into: 0 for 0, else
/// `64 - leading_zeros(v)` (so `[2^(i-1), 2^i - 1]` maps to `i`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-bucket log2 histogram: 65 power-of-two buckets, plus a
/// saturating running count/sum/min/max so snapshots can report exact
/// means alongside the bucketed distribution.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: Counter,
    sum: Counter,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; a local interior-mutable const is
        // the `const fn` way to build the array — each array slot
        // instantiates a fresh zero, which is exactly the intent here.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: Counter::new(),
            sum: Counter::new(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.bump();
        self.sum.add(v);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        let count = self.count.get();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.get(),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q in [0,1]`: the upper bound of the bucket
    /// containing the nearest-rank observation. Exact values live in the
    /// trace; the histogram answers "which power-of-two decade".
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen > rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Box<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named instruments. Names are `&'static str` from the
/// stable metric-name table in the README; registration is
/// get-or-create, so call sites just name the metric they record to.
///
/// Lookup takes a mutex but call sites are expected to either record
/// rarely (per request / per run, not per row) or hold on to the
/// returned handle; the handles themselves record lock-free.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<Vec<(&'static str, &'static Instrument)>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry { instruments: Mutex::new(Vec::new()) }
    }

    fn get_or_register(&self, name: &'static str, make: fn() -> Instrument) -> &'static Instrument {
        let mut list = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, inst)) = list.iter().find(|(n, _)| *n == name) {
            return inst;
        }
        // Instruments live for the process lifetime: leaking gives every
        // handle a 'static borrow with no per-record synchronization.
        let inst: &'static Instrument = Box::leak(Box::new(make()));
        list.push((name, inst));
        inst
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        match self.get_or_register(name, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        match self.get_or_register(name, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        match self.get_or_register(name, || Instrument::Histogram(Box::default())) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time snapshot of every registered instrument, sorted
    /// by name.
    pub fn snapshot(&self) -> Snapshot {
        let list = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let mut values: Vec<(String, MetricValue)> = list
            .iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.to_string(), value)
            })
            .collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { values }
    }
}

/// One frozen metric value.
///
/// The histogram variant is ~550 bytes against the scalars' 8; snapshots
/// are a handful of entries built once per export, so the per-entry
/// overhead is irrelevant and a `Box` would only complicate `diff`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A frozen, name-sorted view of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub values: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.binary_search_by(|(n, _)| n.as_str().cmp(name)).ok().map(|i| &self.values[i].1)
    }

    /// Counter value by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// counts subtract (saturating — a counter pinned at `u64::MAX`
    /// diffs as whatever headroom remained, never underflows); gauges
    /// and histogram min/max take `self`'s value (they are points, not
    /// accumulations). Metrics absent from `earlier` pass through.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(name, value)| {
                let diffed = match (value, earlier.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        let mut h = *now;
                        for (b, t) in h.buckets.iter_mut().zip(&then.buckets) {
                            *b = b.saturating_sub(*t);
                        }
                        h.count = h.count.saturating_sub(then.count);
                        h.sum = h.sum.saturating_sub(then.sum);
                        MetricValue::Histogram(h)
                    }
                    _ => value.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        Snapshot { values }
    }
}

/// The process-global registry (what the CLI flags export).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_max() {
        let c = Counter::new();
        c.force(u64::MAX - 1);
        c.bump();
        assert_eq!(c.get(), u64::MAX);
        c.bump();
        assert_eq!(c.get(), u64::MAX);
        c.add(1000);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // every bucket's upper bound indexes back into the same bucket
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    /// Regression pin for the exact power-of-two edges: bucket 0 holds
    /// only `{0}`, and a value of exactly `2^k` opens bucket `k+1`
    /// (i.e. `2^k - 1` is the inclusive top of bucket `k`). The windowed
    /// metrics, the SLO tracker and the Prometheus `le` boundaries all
    /// assume these edges; an off-by-one here silently shifts every
    /// exported quantile by a power of two.
    #[test]
    fn bucket_edges_pin_powers_of_two() {
        for k in 0..64usize {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k} opens bucket {}", k + 1);
            assert_eq!(bucket_index(v - 1), if k == 0 { 0 } else { k }, "2^{k}-1 stays below");
            assert_eq!(
                bucket_upper_bound(k + 1),
                if k == 63 { u64::MAX } else { (v << 1) - 1 },
                "bucket {} tops at 2^{}-1",
                k + 1,
                k + 1
            );
        }
        assert_eq!(bucket_upper_bound(0), 0, "bucket 0 is exactly {{0}}");
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 1, 7, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1009);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // {0}
        assert_eq!(s.buckets[1], 2); // {1}
        assert_eq!(s.buckets[3], 1); // [4,7]
        assert_eq!(s.buckets[10], 1); // [512,1023]
        assert!((s.mean() - 201.8).abs() < 1e-9);
        // median falls in bucket {1}
        assert_eq!(s.quantile_upper_bound(0.5), 1);
        // the top quantile is capped at the observed max, not 1023
        assert_eq!(s.quantile_upper_bound(1.0), 1000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn registry_get_or_register_returns_same_instrument() {
        let r = Registry::new();
        r.counter("test.c").add(3);
        r.counter("test.c").add(4);
        assert_eq!(r.counter("test.c").get(), 7);
        r.gauge("test.g").set(9);
        r.histogram("test.h").record(5);
        let s = r.snapshot();
        assert_eq!(s.counter("test.c"), Some(7));
        assert_eq!(s.get("test.g"), Some(&MetricValue::Gauge(9)));
        assert!(matches!(s.get("test.h"), Some(MetricValue::Histogram(h)) if h.count == 1));
        assert!(s.get("test.missing").is_none());
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("test.kind");
        r.gauge("test.kind");
    }

    #[test]
    fn snapshot_diff_subtracts_counters_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("d.c");
        let g = r.gauge("d.g");
        let h = r.histogram("d.h");
        c.add(10);
        g.set(100);
        h.record(4);
        let before = r.snapshot();
        c.add(5);
        g.set(42);
        h.record(4);
        h.record(900);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("d.c"), Some(5));
        assert_eq!(d.get("d.g"), Some(&MetricValue::Gauge(42)));
        match d.get("d.h") {
            Some(MetricValue::Histogram(hs)) => {
                assert_eq!(hs.count, 2);
                assert_eq!(hs.sum, 904);
                assert_eq!(hs.buckets[3], 1);
                assert_eq!(hs.buckets[10], 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn saturated_counter_diff_never_underflows() {
        let r = Registry::new();
        let c = r.counter("sat.c");
        c.force(u64::MAX);
        let before = r.snapshot();
        c.add(7);
        let after = r.snapshot();
        assert_eq!(after.diff(&before).counter("sat.c"), Some(0));
    }
}
