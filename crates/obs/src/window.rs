//! Time-windowed metrics: rotating-slot histograms and counters that
//! answer "over the last N seconds" beside the cumulative registry.
//!
//! A long-lived server's cumulative p99 converges to its lifetime
//! average and stops moving — useless for "is p99 degrading *right
//! now*". A [`WindowedHistogram`] keeps [`SLOTS`] rotating sub-window
//! slots on the recorder timeline ([`crate::span::now_ns`]); recording
//! stamps the observation into the slot for the current sub-window
//! (lazily recycling slots whose sub-window has passed), and a snapshot
//! merges every slot still inside the window. The result is a bounded,
//! allocation-free sliding approximation: observations expire in
//! whole-slot granules (window/[`SLOTS`]), never linger forever.
//!
//! All types take an explicit `*_at(now_ns, ..)` variant so tests drive
//! a deterministic clock; the plain methods read the shared recorder
//! clock.

use crate::metrics::{bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::span;
use std::sync::Mutex;

/// Rotating sub-window slots per windowed instrument. More slots means
/// smoother expiry and a bigger constant footprint; 8 keeps the stale
/// tail under 1/8 of the window.
pub const SLOTS: usize = 8;

#[derive(Clone, Copy)]
struct HistSlot {
    index: u64,
    hist: HistogramSnapshot,
}

const EMPTY_HIST: HistogramSnapshot =
    HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: 0, max: 0 };

fn observe(h: &mut HistogramSnapshot, v: u64) {
    h.buckets[bucket_index(v)] += 1;
    h.count += 1;
    h.sum = h.sum.saturating_add(v);
    h.min = if h.count == 1 { v } else { h.min.min(v) };
    h.max = h.max.max(v);
}

fn merge(into: &mut HistogramSnapshot, from: &HistogramSnapshot) {
    if from.count == 0 {
        return;
    }
    for (a, b) in into.buckets.iter_mut().zip(&from.buckets) {
        *a += b;
    }
    into.min = if into.count == 0 { from.min } else { into.min.min(from.min) };
    into.count += from.count;
    into.sum = into.sum.saturating_add(from.sum);
    into.max = into.max.max(from.max);
}

/// A log2 histogram over a sliding time window (slot-granular expiry).
pub struct WindowedHistogram {
    window_ns: u64,
    slot_ns: u64,
    slots: Mutex<[HistSlot; SLOTS]>,
}

impl WindowedHistogram {
    /// A windowed histogram covering roughly the last `window_ns`
    /// (expiry granularity `window_ns / SLOTS`, floored to 1 ns).
    pub fn new(window_ns: u64) -> Self {
        WindowedHistogram {
            window_ns,
            slot_ns: (window_ns / SLOTS as u64).max(1),
            slots: Mutex::new([HistSlot { index: 0, hist: EMPTY_HIST }; SLOTS]),
        }
    }

    /// The configured window span.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records one observation at the current recorder time.
    pub fn record(&self, v: u64) {
        self.record_at(span::now_ns(), v);
    }

    /// Records one observation at an explicit time.
    pub fn record_at(&self, now_ns: u64, v: u64) {
        let index = now_ns / self.slot_ns;
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let slot = &mut slots[(index % SLOTS as u64) as usize];
        if slot.index != index {
            *slot = HistSlot { index, hist: EMPTY_HIST };
        }
        observe(&mut slot.hist, v);
    }

    /// Merged distribution of every slot still inside the window.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(span::now_ns())
    }

    /// [`WindowedHistogram::snapshot`] at an explicit time.
    pub fn snapshot_at(&self, now_ns: u64) -> HistogramSnapshot {
        let now_index = now_ns / self.slot_ns;
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = EMPTY_HIST;
        for slot in slots.iter() {
            // the live slot plus the SLOTS-1 before it
            if slot.index + (SLOTS as u64) > now_index && slot.index <= now_index {
                merge(&mut out, &slot.hist);
            }
        }
        out
    }
}

#[derive(Clone, Copy)]
struct CountSlot {
    index: u64,
    value: u64,
}

/// A counter over a sliding time window (slot-granular expiry); the
/// basis for rates like queries-per-second.
pub struct WindowedCounter {
    window_ns: u64,
    slot_ns: u64,
    slots: Mutex<[CountSlot; SLOTS]>,
}

impl WindowedCounter {
    /// A windowed counter covering roughly the last `window_ns`.
    pub fn new(window_ns: u64) -> Self {
        WindowedCounter {
            window_ns,
            slot_ns: (window_ns / SLOTS as u64).max(1),
            slots: Mutex::new([CountSlot { index: 0, value: 0 }; SLOTS]),
        }
    }

    /// The configured window span.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Adds `n` at the current recorder time.
    pub fn add(&self, n: u64) {
        self.add_at(span::now_ns(), n);
    }

    /// Adds `n` at an explicit time.
    pub fn add_at(&self, now_ns: u64, n: u64) {
        let index = now_ns / self.slot_ns;
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let slot = &mut slots[(index % SLOTS as u64) as usize];
        if slot.index != index {
            *slot = CountSlot { index, value: 0 };
        }
        slot.value = slot.value.saturating_add(n);
    }

    /// Sum over every slot still inside the window.
    pub fn sum(&self) -> u64 {
        self.sum_at(span::now_ns())
    }

    /// [`WindowedCounter::sum`] at an explicit time.
    pub fn sum_at(&self, now_ns: u64) -> u64 {
        let now_index = now_ns / self.slot_ns;
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .iter()
            .filter(|s| s.index + (SLOTS as u64) > now_index && s.index <= now_index)
            .fold(0u64, |acc, s| acc.saturating_add(s.value))
    }

    /// Windowed sum divided by the window span in seconds — e.g. qps
    /// when the counter counts requests.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec_at(span::now_ns())
    }

    /// [`WindowedCounter::rate_per_sec`] at an explicit time.
    pub fn rate_per_sec_at(&self, now_ns: u64) -> f64 {
        self.sum_at(now_ns) as f64 / (self.window_ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 8_000; // window 8 µs -> slot 1 µs

    #[test]
    fn windowed_histogram_merges_live_slots() {
        let h = WindowedHistogram::new(W);
        h.record_at(1_000, 10);
        h.record_at(2_500, 100);
        h.record_at(2_600, 1_000);
        let s = h.snapshot_at(3_000);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1_110);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1_000);
    }

    #[test]
    fn observations_expire_after_the_window() {
        let h = WindowedHistogram::new(W);
        h.record_at(500, 42);
        assert_eq!(h.snapshot_at(1_000).count, 1);
        // slot 0 stays visible through slot index 7, gone at index 8
        assert_eq!(h.snapshot_at(7_999).count, 1);
        assert_eq!(h.snapshot_at(8_000).count, 0);
    }

    #[test]
    fn stale_slot_is_recycled_on_write() {
        let h = WindowedHistogram::new(W);
        h.record_at(500, 1); // slot index 0
        h.record_at(500 + W, 2); // slot index 8 -> same physical slot, recycled
        let s = h.snapshot_at(500 + W);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2);
    }

    #[test]
    fn windowed_quantiles_track_the_recent_distribution() {
        let h = WindowedHistogram::new(W);
        for i in 0..100 {
            h.record_at(1_000, 8 + (i % 3)); // fast cluster
        }
        h.record_at(6_000, 1 << 20); // one recent outlier
        let s = h.snapshot_at(6_500);
        assert_eq!(s.quantile_upper_bound(0.5), 15);
        assert_eq!(s.quantile_upper_bound(0.999), 1 << 20);
        // after the fast cluster expires only the outlier remains
        let late = h.snapshot_at(1_000 + W);
        assert_eq!(late.count, 1);
        assert_eq!(late.quantile_upper_bound(0.5), 1 << 20);
    }

    #[test]
    fn windowed_counter_sums_and_rates() {
        let c = WindowedCounter::new(8_000_000_000); // 8 s window, 1 s slots
        c.add_at(500_000_000, 3);
        c.add_at(1_500_000_000, 5);
        assert_eq!(c.sum_at(2_000_000_000), 8);
        assert!((c.rate_per_sec_at(2_000_000_000) - 1.0).abs() < 1e-12);
        // the first slot expires, the second remains
        assert_eq!(c.sum_at(8_500_000_000), 5);
        assert_eq!(c.sum_at(9_500_000_000), 0);
    }

    #[test]
    fn tiny_windows_floor_slot_to_one_ns() {
        let h = WindowedHistogram::new(3);
        h.record_at(0, 1);
        assert_eq!(h.snapshot_at(0).count, 1);
    }
}
