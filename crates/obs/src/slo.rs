//! Windowed SLO tracking per request class: exact tier, coreset tier,
//! patched live.
//!
//! The serving stack's latency promise is per *class* — an exact
//! high-zoom tile, a coreset overview, a patched live viewport have
//! different budgets (PAPER.md §6: overview tails dominate, which is why
//! the coreset tier exists). An [`SloTracker`] keeps one
//! [`WindowedHistogram`] per class, compares the windowed p99 against
//! the class target after every observation, and **edge-triggers**: the
//! breach is reported once on the transition into breach, not on every
//! request while breached — a sustained breach produces one incident
//! dump, not a dump per request. Individual requests over the p99 target
//! are *slow* (they become flight-recorder [exemplars](crate::ring));
//! the SLO *breach* is a property of the windowed distribution.
//!
//! Breach transitions also bump the global counters
//! `slo.breach.{exact,coreset,live}`.

use crate::metrics::{Counter, HistogramSnapshot};
use crate::window::WindowedHistogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The serving request classes with distinct latency budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Detail-zoom request served by the exact sweep tier.
    Exact,
    /// Overview request served by the coreset tier.
    Coreset,
    /// Request against a streaming (patched) live server.
    Live,
}

impl RequestClass {
    /// Every class, in display order.
    pub const ALL: [RequestClass; 3] =
        [RequestClass::Exact, RequestClass::Coreset, RequestClass::Live];

    /// Stable lowercase name (`exact` / `coreset` / `live`).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Exact => "exact",
            RequestClass::Coreset => "coreset",
            RequestClass::Live => "live",
        }
    }

    /// Global breach-counter name for this class.
    pub fn breach_counter(self) -> &'static str {
        match self {
            RequestClass::Exact => "slo.breach.exact",
            RequestClass::Coreset => "slo.breach.coreset",
            RequestClass::Live => "slo.breach.live",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestClass::Exact => 0,
            RequestClass::Coreset => 1,
            RequestClass::Live => 2,
        }
    }
}

/// Latency targets for one request class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTargets {
    /// Median target.
    pub p50_ns: u64,
    /// Tail target; requests above it are slow, a windowed p99 above it
    /// is a breach.
    pub p99_ns: u64,
}

impl SloTargets {
    /// Targets from milliseconds (the CLI flag unit).
    pub fn from_ms(p50_ms: f64, p99_ms: f64) -> Self {
        SloTargets { p50_ns: (p50_ms * 1e6) as u64, p99_ns: (p99_ms * 1e6) as u64 }
    }
}

/// What one recorded observation meant for the SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloObservation {
    /// This request exceeded its class p99 target (it was noted as a
    /// flight-recorder exemplar).
    pub slow: bool,
    /// This observation *transitioned* the class into breach — fire the
    /// incident trigger on this edge.
    pub breached: bool,
    /// The class's windowed p99 (log2-bucket upper bound) after this
    /// observation.
    pub windowed_p99_ns: u64,
}

struct ClassState {
    latency: WindowedHistogram,
    targets: SloTargets,
    breaches: Counter,
    in_breach: AtomicBool,
    last_slow_request: AtomicU64,
}

/// Per-class windowed latency tracking against p50/p99 targets with
/// edge-triggered breach detection.
pub struct SloTracker {
    classes: [ClassState; 3],
}

impl SloTracker {
    /// A tracker with per-class targets (indexed like
    /// [`RequestClass::ALL`]) over a `window_ns` sliding window.
    pub fn new(window_ns: u64, targets: [SloTargets; 3]) -> Self {
        let make = |t: SloTargets| ClassState {
            latency: WindowedHistogram::new(window_ns),
            targets: t,
            breaches: Counter::new(),
            in_breach: AtomicBool::new(false),
            last_slow_request: AtomicU64::new(0),
        };
        SloTracker { classes: [make(targets[0]), make(targets[1]), make(targets[2])] }
    }

    /// A tracker applying the same targets to every class.
    pub fn uniform(window_ns: u64, targets: SloTargets) -> Self {
        Self::new(window_ns, [targets; 3])
    }

    /// Records one request latency at the current recorder time.
    pub fn record(&self, class: RequestClass, latency_ns: u64, request_id: u64) -> SloObservation {
        self.record_at(crate::span::now_ns(), class, latency_ns, request_id)
    }

    /// [`SloTracker::record`] at an explicit time (deterministic tests).
    pub fn record_at(
        &self,
        now_ns: u64,
        class: RequestClass,
        latency_ns: u64,
        request_id: u64,
    ) -> SloObservation {
        let st = &self.classes[class.index()];
        st.latency.record_at(now_ns, latency_ns);
        let slow = latency_ns > st.targets.p99_ns;
        if slow {
            st.last_slow_request.store(request_id, Ordering::Relaxed);
            crate::ring::note_exemplar(request_id, class.name(), latency_ns);
        }
        let windowed_p99_ns = st.latency.snapshot_at(now_ns).quantile_upper_bound(0.99);
        let over = windowed_p99_ns > st.targets.p99_ns;
        let breached = if over {
            !st.in_breach.swap(true, Ordering::Relaxed)
        } else {
            st.in_breach.store(false, Ordering::Relaxed);
            false
        };
        if breached {
            st.breaches.bump();
            crate::metrics::global().counter(class.breach_counter()).bump();
        }
        SloObservation { slow, breached, windowed_p99_ns }
    }

    /// The sliding-window length the tracker was built with.
    pub fn window_ns(&self) -> u64 {
        self.classes[0].latency.window_ns()
    }

    /// The class targets.
    pub fn targets(&self, class: RequestClass) -> SloTargets {
        self.classes[class.index()].targets
    }

    /// Breach transitions seen for the class since construction.
    pub fn breaches(&self, class: RequestClass) -> u64 {
        self.classes[class.index()].breaches.get()
    }

    /// Whether the class is currently in breach.
    pub fn in_breach(&self, class: RequestClass) -> bool {
        self.classes[class.index()].in_breach.load(Ordering::Relaxed)
    }

    /// The most recent slow request's id for the class (0 if none yet).
    pub fn last_slow_request(&self, class: RequestClass) -> u64 {
        self.classes[class.index()].last_slow_request.load(Ordering::Relaxed)
    }

    /// The class's windowed latency distribution at the current time.
    pub fn windowed(&self, class: RequestClass) -> HistogramSnapshot {
        self.classes[class.index()].latency.snapshot()
    }

    /// [`SloTracker::windowed`] at an explicit time.
    pub fn windowed_at(&self, now_ns: u64, class: RequestClass) -> HistogramSnapshot {
        self.classes[class.index()].latency.snapshot_at(now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000_000_000; // 1 s window

    fn tracker(p99_ns: u64) -> SloTracker {
        SloTracker::uniform(W, SloTargets { p50_ns: p99_ns / 2, p99_ns })
    }

    #[test]
    fn fast_requests_never_breach() {
        let t = tracker(1 << 20);
        for i in 0..100 {
            let obs = t.record_at(i * 1_000, RequestClass::Exact, 1000, i);
            assert!(!obs.slow);
            assert!(!obs.breached);
        }
        assert_eq!(t.breaches(RequestClass::Exact), 0);
        assert!(!t.in_breach(RequestClass::Exact));
    }

    #[test]
    fn breach_fires_once_on_the_edge() {
        let _x = crate::span::exclusive(); // note_exemplar touches global state
        crate::ring::clear();
        let t = tracker(1000);
        // every request slow -> windowed p99 over target from the start
        let first = t.record_at(10, RequestClass::Live, 50_000, 7);
        assert!(first.slow);
        assert!(first.breached, "first over-target observation is the edge");
        for i in 1..50 {
            let obs = t.record_at(10 + i, RequestClass::Live, 50_000, 7 + i);
            assert!(obs.slow);
            assert!(!obs.breached, "sustained breach reports no further edges");
        }
        assert_eq!(t.breaches(RequestClass::Live), 1);
        assert!(t.in_breach(RequestClass::Live));
        assert_eq!(t.last_slow_request(RequestClass::Live), 7 + 49);
        // the slow requests left exemplars linking their ids
        let ex = crate::ring::exemplars();
        assert!(ex.iter().any(|e| e.class == "live" && e.request_id == 7 + 49));
        crate::ring::clear();
    }

    #[test]
    fn recovery_rearms_the_edge() {
        let _x = crate::span::exclusive();
        crate::ring::clear();
        let t = tracker(1000);
        assert!(t.record_at(10, RequestClass::Coreset, 9_000, 1).breached);
        // slow window expires; fast traffic brings p99 back under target
        // (few enough requests that one fresh outlier still owns p99)
        let later = 10 + 2 * W;
        for i in 0..40 {
            let obs = t.record_at(later + i, RequestClass::Coreset, 10, 100 + i);
            assert!(!obs.breached);
        }
        assert!(!t.in_breach(RequestClass::Coreset));
        // a fresh breach fires a second edge
        assert!(t.record_at(later + 200, RequestClass::Coreset, 9_000, 500).breached);
        assert_eq!(t.breaches(RequestClass::Coreset), 2);
        crate::ring::clear();
    }

    #[test]
    fn classes_track_independently() {
        let _x = crate::span::exclusive();
        crate::ring::clear();
        let t = tracker(1000);
        assert!(t.record_at(10, RequestClass::Exact, 5_000, 1).breached);
        let obs = t.record_at(10, RequestClass::Coreset, 10, 2);
        assert!(!obs.slow && !obs.breached);
        assert_eq!(t.breaches(RequestClass::Exact), 1);
        assert_eq!(t.breaches(RequestClass::Coreset), 0);
        crate::ring::clear();
    }

    #[test]
    fn targets_from_ms_convert() {
        let t = SloTargets::from_ms(5.0, 50.0);
        assert_eq!(t.p50_ns, 5_000_000);
        assert_eq!(t.p99_ns, 50_000_000);
    }
}
