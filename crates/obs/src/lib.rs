//! # kdv-obs — observability runtime for the SLAM-KDV workspace
//!
//! A dependency-free (no tokio, no `tracing`, std only) observability
//! layer shared by the sweep engines, the parallel runtime, the tile
//! server and the bench harness. The paper's cost model makes concrete
//! per-phase predictions — envelope extraction vs. interval sort vs. row
//! sweep — and this crate is how the repo observes them empirically:
//!
//! * [`span`] — a per-thread **span recorder**: `begin`/`end` events with
//!   static names and `u64` arguments, recorded into thread-local buffers
//!   that drain into a global sink when a thread exits (or on an explicit
//!   [`span::flush_thread`]). Spans are RAII guards ([`span::span`]), so
//!   every begin has a matching end by construction; a **disabled**
//!   recorder costs one relaxed atomic load and a branch per span.
//! * [`metrics`] — a **registry** of named counters, gauges and
//!   fixed-bucket log2 histograms with cheap atomic recording. Counters
//!   are *saturating* (they stick at `u64::MAX` instead of wrapping),
//!   matching the tile-cache counter semantics. Point-in-time
//!   [`metrics::Snapshot`]s can be diffed and serialized.
//! * [`export`] — exporters: Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`), a flat JSON metrics snapshot, and a
//!   human-readable per-phase summary table.
//! * [`stats`] — the percentile / median / latency-formatting helpers
//!   previously copy-pasted between `kdv-core` telemetry, the CLI and
//!   the bench binaries.
//!
//! On top of the post-hoc layer sits the *operational* layer for
//! long-lived `kdv serve` processes:
//!
//! * [`ring`] — the always-on **flight recorder**: bounded per-thread
//!   rings of completed spans (overwrite-oldest, losses counted in
//!   `obs.dropped_events`) with trigger-based **incident dumps** — a
//!   shed, a duplicate band compute, an SLO breach or a leader panic
//!   snapshots the last N seconds of spans, the metrics registry and
//!   the slow-request [`ring::Exemplar`]s into a Perfetto-loadable file.
//! * [`window`] — rotating time-windowed histograms/counters beside the
//!   cumulative ones ("p99 over the last 10 s", qps).
//! * [`slo`] — [`slo::SloTracker`]: windowed p50/p99 per request class
//!   (exact / coreset / live) against explicit targets, with
//!   edge-triggered breach detection feeding the incident triggers.
//! * [`prometheus`] — dependency-free Prometheus text-exposition writer
//!   over metrics [`metrics::Snapshot`]s, plus the minimal parser the
//!   golden tests use.
//!
//! The recorder state is process-global (one trace per process), which is
//! what a CLI invocation or a server wants. Tests that enable it must
//! serialize through [`span::exclusive`] and live in their own
//! integration-test binary so concurrent unit tests cannot interleave
//! foreign events into the window under assertion. The same rule covers
//! the flight recorder's [`ring::set_recording`] / [`ring::arm_incidents`].

pub mod export;
pub mod metrics;
pub mod prometheus;
pub mod ring;
pub mod slo;
pub mod span;
pub mod stats;
pub mod window;

pub use export::{chrome_trace_json, metrics_json, phase_summary, validate_json};
pub use metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
pub use prometheus::prometheus_text;
pub use ring::{arm_incidents, disarm_incidents, trigger, Exemplar, IncidentConfig};
pub use slo::{RequestClass, SloObservation, SloTargets, SloTracker};
pub use span::{enabled, set_enabled, span, span1, span2, SpanArgs, SpanGuard, Trace, TraceEvent};
pub use window::{WindowedCounter, WindowedHistogram};
