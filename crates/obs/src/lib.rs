//! # kdv-obs — observability runtime for the SLAM-KDV workspace
//!
//! A dependency-free (no tokio, no `tracing`, std only) observability
//! layer shared by the sweep engines, the parallel runtime, the tile
//! server and the bench harness. The paper's cost model makes concrete
//! per-phase predictions — envelope extraction vs. interval sort vs. row
//! sweep — and this crate is how the repo observes them empirically:
//!
//! * [`span`] — a per-thread **span recorder**: `begin`/`end` events with
//!   static names and `u64` arguments, recorded into thread-local buffers
//!   that drain into a global sink when a thread exits (or on an explicit
//!   [`span::flush_thread`]). Spans are RAII guards ([`span::span`]), so
//!   every begin has a matching end by construction; a **disabled**
//!   recorder costs one relaxed atomic load and a branch per span.
//! * [`metrics`] — a **registry** of named counters, gauges and
//!   fixed-bucket log2 histograms with cheap atomic recording. Counters
//!   are *saturating* (they stick at `u64::MAX` instead of wrapping),
//!   matching the tile-cache counter semantics. Point-in-time
//!   [`metrics::Snapshot`]s can be diffed and serialized.
//! * [`export`] — exporters: Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`), a flat JSON metrics snapshot, and a
//!   human-readable per-phase summary table.
//! * [`stats`] — the percentile / median helpers previously copy-pasted
//!   between `kdv-core` telemetry and the bench binaries.
//!
//! The recorder state is process-global (one trace per process), which is
//! what a CLI invocation or a server wants. Tests that enable it must
//! serialize through [`span::exclusive`] and live in their own
//! integration-test binary so concurrent unit tests cannot interleave
//! foreign events into the window under assertion.

pub mod export;
pub mod metrics;
pub mod span;
pub mod stats;

pub use export::{chrome_trace_json, metrics_json, phase_summary, validate_json};
pub use metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
pub use span::{enabled, set_enabled, span, span1, span2, SpanArgs, SpanGuard, Trace, TraceEvent};
