//! Dependency-free Prometheus text-exposition writer for metrics
//! [`Snapshot`]s.
//!
//! Emits version 0.0.4 text format: one `# TYPE` line per metric, then
//! the samples. Counters and gauges are single samples; log2 histograms
//! become the conventional cumulative `_bucket{le="..."}` series (one
//! bucket per *occupied* log2 bucket — the boundaries are fixed
//! powers of two, so omitting empty buckets loses nothing: the next
//! occupied bucket carries the same cumulative count) plus
//! `{le="+Inf"}`, `_sum` and `_count`. Metric names are the registry's
//! dotted names prefixed with `kdv_` and sanitized to the Prometheus
//! grammar (`serve.request_ns` → `kdv_serve_request_ns`).
//!
//! [`parse_text`] is the matching minimal reader — enough structure for
//! the golden-format test and for asserting the exposition agrees with
//! the [`Snapshot`] it came from, sample by sample.

use crate::metrics::{bucket_upper_bound, MetricValue, Snapshot};
use std::fmt::Write as _;

/// A registry metric name as exposed to Prometheus: `kdv_` + the dotted
/// name with every non-`[A-Za-z0-9_]` byte replaced by `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(4 + name.len());
    out.push_str("kdv_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Renders a [`Snapshot`] in Prometheus text-exposition format
/// (samples in snapshot order, i.e. sorted by registry name).
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(64 * snapshot.values.len().max(1));
    for (name, value) in &snapshot.values {
        let prom = metric_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {prom} counter\n{prom} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {prom} gauge\n{prom} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {prom} histogram");
                let mut cumulative = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let _ = writeln!(
                        out,
                        "{prom}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{prom}_sum {}", h.sum);
                let _ = writeln!(out, "{prom}_count {}", h.count);
            }
        }
    }
    out
}

/// One parsed sample: the series key (metric name plus any `{...}`
/// label block, verbatim) and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// `name` or `name{le="..."}` exactly as exposed.
    pub series: String,
    /// Sample value.
    pub value: f64,
}

/// Parses text-exposition output back into samples, validating the
/// line grammar: every non-comment line is `series value`, names match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, label blocks are balanced, values parse
/// as floats. Returns `Err(line_number)` (1-based) on the first
/// malformed line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, usize> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = || lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').ok_or_else(err)?;
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        let mut chars = name.chars();
        let first_ok =
            chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
        if !first_ok || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(err());
        }
        let labels = &series[name_end..];
        if !(labels.is_empty() || labels.starts_with('{') && labels.ends_with('}')) {
            return Err(err());
        }
        let value: f64 = value.parse().map_err(|_| err())?;
        samples.push(Sample { series: series.to_string(), value });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("cache.hits").add(12);
        r.gauge("cache.bytes").set(4096);
        let h = r.histogram("sweep.fill_ns");
        h.record(500);
        h.record(3_000);
        r
    }

    #[test]
    fn golden_text_format() {
        let text = prometheus_text(&sample_registry().snapshot());
        let expected = "\
# TYPE kdv_cache_bytes gauge
kdv_cache_bytes 4096
# TYPE kdv_cache_hits counter
kdv_cache_hits 12
# TYPE kdv_sweep_fill_ns histogram
kdv_sweep_fill_ns_bucket{le=\"511\"} 1
kdv_sweep_fill_ns_bucket{le=\"4095\"} 2
kdv_sweep_fill_ns_bucket{le=\"+Inf\"} 2
kdv_sweep_fill_ns_sum 3500
kdv_sweep_fill_ns_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_parses_and_agrees_with_the_snapshot() {
        let snapshot = sample_registry().snapshot();
        let samples = parse_text(&prometheus_text(&snapshot)).expect("parses");
        let get = |series: &str| samples.iter().find(|s| s.series == series).map(|s| s.value);
        assert_eq!(get("kdv_cache_hits"), Some(12.0));
        assert_eq!(get("kdv_cache_bytes"), Some(4096.0));
        assert_eq!(get("kdv_sweep_fill_ns_count"), Some(2.0));
        assert_eq!(get("kdv_sweep_fill_ns_sum"), Some(3500.0));
        assert_eq!(get("kdv_sweep_fill_ns_bucket{le=\"+Inf\"}"), Some(2.0));
        // cumulative buckets are monotone and end at the count
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.series.starts_with("kdv_sweep_fill_ns_bucket"))
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn names_sanitize_to_prometheus_grammar() {
        assert_eq!(metric_name("serve.request_ns"), "kdv_serve_request_ns");
        assert_eq!(metric_name("slo.breach.live"), "kdv_slo_breach_live");
        assert_eq!(metric_name("weird-name+x"), "kdv_weird_name_x");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("kdv_ok 1\n").is_ok());
        assert_eq!(parse_text("9bad_name 1\n"), Err(1));
        assert_eq!(parse_text("kdv_ok notanumber\n"), Err(1));
        assert_eq!(parse_text("kdv_ok{le=\"1\" 1\n"), Err(1));
        assert_eq!(parse_text("novalue\n"), Err(1));
        // comments and blank lines are skipped, errors report 1-based lines
        assert_eq!(parse_text("# ok\n\nkdv_ok 1\nbroken\n"), Err(4));
    }

    #[test]
    fn empty_snapshot_exports_empty_text() {
        let text = prometheus_text(&Registry::new().snapshot());
        assert!(text.is_empty());
        assert_eq!(parse_text(&text), Ok(vec![]));
    }
}
