//! Flight recorder: always-on bounded per-thread rings of *completed*
//! spans with trigger-based incident dumps.
//!
//! The span recorder in [`crate::span`] answers "what happened over the
//! whole run" — it grows without bound while enabled and is drained once
//! at exit. A long-lived server needs the opposite: a recorder that is
//! always on, costs near-nothing in steady state, never grows, and can
//! answer "what were the last few seconds doing" the moment something
//! goes wrong. That is this module:
//!
//! * Each thread owns a fixed-capacity ring ([`RING_CAPACITY`] completed
//!   spans, overwrite-oldest). A [`crate::span::SpanGuard`] whose scope
//!   closes while [`recording`] is on writes one entry into its thread's
//!   ring; the write path is a `try_lock` that **never blocks** — a
//!   contended ring drops the event and counts it in
//!   `obs.dropped_events` instead of stalling the serving path.
//!   Overwritten-oldest entries are normal ring operation and are
//!   counted separately (reported per incident dump as `overwritten`).
//! * [`trigger`] snapshots the last `window_ns` of spans from every ring
//!   plus a full metrics snapshot and the recent [`Exemplar`]s into a
//!   Perfetto-loadable incident file (`incident-NNNN-<kind>.json`).
//!   Triggers are armed with [`arm_incidents`]; a disarmed trigger is a
//!   single relaxed atomic load. Per-kind cooldowns and a dump cap keep
//!   a misbehaving server from writing incident files in a loop.
//! * [`note_exemplar`] links a slow request's id and class to the
//!   captured span tree: the `serve.request` span carries the same id in
//!   its `req` argument, so the incident file ties the exemplar row to
//!   the exact spans of the offending request.
//!
//! Tests that toggle the process-global recording flag must hold
//! [`crate::span::exclusive`], exactly like span-recorder tests.

use crate::span::{self, SpanArgs, Trace, TraceEvent};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Completed spans each thread ring retains (overwrite-oldest beyond
/// this). 4096 spans at ~10 spans/request covers hundreds of requests —
/// several seconds of history at interactive rates.
pub const RING_CAPACITY: usize = 4096;

/// Exemplars retained (newest-kept); each links a slow request id to the
/// span tree captured in the next incident dump.
pub const MAX_EXEMPLARS: usize = 16;

static RECORDING: AtomicBool = AtomicBool::new(false);
static ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_RING_TID: AtomicU64 = AtomicU64::new(0);
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
static EXEMPLARS: Mutex<VecDeque<Exemplar>> = Mutex::new(VecDeque::new());
static INCIDENTS: Mutex<Option<IncidentState>> = Mutex::new(None);

/// A slow request above its class SLO: the link between a request id in
/// the serving log and the span tree in the incident dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Frontend-assigned request id (the `req` argument of the request's
    /// `serve.request` span).
    pub request_id: u64,
    /// Request class name (`exact` / `coreset` / `live`).
    pub class: &'static str,
    /// Observed latency.
    pub latency_ns: u64,
    /// When the request finished, on the recorder timeline.
    pub ts_ns: u64,
}

struct RingState {
    buf: Vec<TraceEvent>,
    next: usize,
    overwritten: u64,
}

impl RingState {
    fn push(&mut self, e: TraceEvent) {
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % RING_CAPACITY;
            self.overwritten += 1;
        }
    }
}

struct ThreadRing {
    tid: u64,
    state: Mutex<RingState>,
}

fn lock_rings() -> MutexGuard<'static, Vec<Arc<ThreadRing>>> {
    RINGS.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_exemplars() -> MutexGuard<'static, VecDeque<Exemplar>> {
    EXEMPLARS.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_incidents() -> MutexGuard<'static, Option<IncidentState>> {
    INCIDENTS.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    // Registered globally on first record so dumps see every thread's
    // ring; the Arc keeps a ring readable after its thread exits (the
    // spans age out of the dump window naturally).
    static RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            tid: NEXT_RING_TID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(RingState { buf: Vec::new(), next: 0, overwritten: 0 }),
        });
        lock_rings().push(Arc::clone(&ring));
        ring
    };
}

/// Turns the flight recorder on or off process-wide. While off, the
/// per-span cost is one relaxed load.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::SeqCst);
}

/// Whether completed spans are currently being written into the rings.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Writes one completed span into the calling thread's ring. Called from
/// `SpanGuard::drop`; never blocks — TLS teardown or a contended ring
/// drops the event into `obs.dropped_events` instead.
pub(crate) fn record_completed(name: &'static str, ts_ns: u64, dur_ns: u64, args: SpanArgs) {
    let recorded = RING
        .try_with(|r| match r.state.try_lock() {
            Ok(mut s) => {
                s.push(TraceEvent { name, tid: r.tid, ts_ns, dur_ns, args });
                true
            }
            Err(_) => false,
        })
        .unwrap_or(false);
    if !recorded {
        span::note_dropped(1);
    }
}

/// The last `window_ns` of completed spans across every thread ring
/// (sorted by thread then start time), plus the total overwritten-oldest
/// count. A span is in the window if it *ended* within it.
pub fn snapshot(window_ns: u64) -> (Trace, u64) {
    snapshot_at(span::now_ns(), window_ns)
}

/// [`snapshot`] against an explicit "now" on the recorder timeline
/// (deterministic tests).
pub fn snapshot_at(now_ns: u64, window_ns: u64) -> (Trace, u64) {
    let cutoff = now_ns.saturating_sub(window_ns);
    let rings: Vec<Arc<ThreadRing>> = lock_rings().clone();
    let mut trace = Trace::default();
    let mut overwritten = 0u64;
    for ring in rings {
        let s = ring.state.lock().unwrap_or_else(|e| e.into_inner());
        overwritten += s.overwritten;
        trace.events.extend(s.buf.iter().filter(|e| e.ts_ns.saturating_add(e.dur_ns) >= cutoff));
    }
    trace.events.sort_by_key(|e| (e.tid, e.ts_ns));
    (trace, overwritten)
}

/// Records a slow-request exemplar (kept newest-[`MAX_EXEMPLARS`]); the
/// next incident dump embeds it beside the span tree.
pub fn note_exemplar(request_id: u64, class: &'static str, latency_ns: u64) {
    let mut ex = lock_exemplars();
    if ex.len() == MAX_EXEMPLARS {
        ex.pop_front();
    }
    ex.push_back(Exemplar { request_id, class, latency_ns, ts_ns: span::now_ns() });
}

/// The retained exemplars, oldest first.
pub fn exemplars() -> Vec<Exemplar> {
    lock_exemplars().iter().copied().collect()
}

/// Empties every ring, the exemplar store and the incident sequence
/// (does not change the recording/armed flags). Benches call this
/// between arms; hold [`crate::span::exclusive`].
pub fn clear() {
    for ring in lock_rings().iter() {
        let mut s = ring.state.lock().unwrap_or_else(|e| e.into_inner());
        s.buf = Vec::new();
        s.next = 0;
        s.overwritten = 0;
    }
    lock_exemplars().clear();
    if let Some(st) = lock_incidents().as_mut() {
        st.seq = 0;
        st.last_fire.clear();
    }
}

/// Incident-dump policy: where dumps go and how eagerly triggers fire.
#[derive(Debug, Clone)]
pub struct IncidentConfig {
    /// Directory incident files are written into (created on demand).
    pub dir: PathBuf,
    /// How far back each dump reaches (default 5 s).
    pub window_ns: u64,
    /// Minimum spacing between dumps of the *same* trigger kind
    /// (default 1 s); repeats inside the cooldown are suppressed.
    pub cooldown_ns: u64,
    /// Hard cap on dumps per arming (default 32) — a wedged server must
    /// not fill the disk with incident files.
    pub max_dumps: u64,
}

impl IncidentConfig {
    /// Default policy writing into `dir`: 5 s window, 1 s per-kind
    /// cooldown, 32 dumps.
    pub fn new(dir: PathBuf) -> Self {
        IncidentConfig { dir, window_ns: 5_000_000_000, cooldown_ns: 1_000_000_000, max_dumps: 32 }
    }
}

struct IncidentState {
    config: IncidentConfig,
    seq: u64,
    last_fire: Vec<(&'static str, u64)>,
}

/// Arms incident dumps (and turns ring recording on — a dump without
/// ring content answers nothing). Re-arming replaces the config and
/// resets the dump sequence.
pub fn arm_incidents(config: IncidentConfig) {
    set_recording(true);
    *lock_incidents() = Some(IncidentState { config, seq: 0, last_fire: Vec::new() });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms incident dumps and turns ring recording back off.
pub fn disarm_incidents() {
    ARMED.store(false, Ordering::SeqCst);
    *lock_incidents() = None;
    set_recording(false);
}

/// Whether [`trigger`] currently writes dumps. Disarmed, a trigger call
/// is this one relaxed load.
#[inline]
pub fn incidents_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn kind_file_stem(kind: &str) -> String {
    kind.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect()
}

/// Fires an incident trigger: if armed and outside `kind`'s cooldown,
/// snapshots the last `window_ns` of spans plus metrics and exemplars to
/// `incident-NNNN-<kind>.json` in the configured directory and returns
/// the path. Returns `None` when disarmed, cooling down, over the dump
/// cap, or if the write failed (observability never panics the server).
pub fn trigger(kind: &'static str, request_id: Option<u64>) -> Option<PathBuf> {
    if !incidents_armed() {
        return None;
    }
    let now = span::now_ns();
    let (path, window_ns) = {
        let mut guard = lock_incidents();
        let st = guard.as_mut()?;
        if st.seq >= st.config.max_dumps {
            return None;
        }
        if let Some(&(_, last)) = st.last_fire.iter().find(|(k, _)| *k == kind) {
            if now.saturating_sub(last) < st.config.cooldown_ns {
                return None;
            }
        }
        match st.last_fire.iter_mut().find(|(k, _)| *k == kind) {
            Some(entry) => entry.1 = now,
            None => st.last_fire.push((kind, now)),
        }
        let seq = st.seq;
        st.seq += 1;
        let file = st.config.dir.join(format!("incident-{seq:04}-{}.json", kind_file_stem(kind)));
        (file, st.config.window_ns)
    };
    let json = incident_json(kind, request_id, now, window_ns);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, json) {
        Ok(()) => {
            crate::metrics::global().counter("obs.incidents").bump();
            Some(path)
        }
        Err(_) => None,
    }
}

/// The incident-dump document: Chrome-trace JSON (`traceEvents` +
/// `displayTimeUnit`) with the trigger context, exemplars and a full
/// metrics snapshot under `otherData` (which Perfetto ignores).
fn incident_json(kind: &str, request_id: Option<u64>, now_ns: u64, window_ns: u64) -> String {
    let (trace, overwritten) = snapshot_at(now_ns, window_ns);
    let metrics = crate::export::metrics_json(&crate::metrics::global().snapshot());
    let mut out = String::with_capacity(1024 + trace.events.len() * 96 + metrics.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"trigger\":\"");
    crate::export::escape_json(kind, &mut out);
    let _ = write!(out, "\",\"ts_ns\":{now_ns}");
    if let Some(id) = request_id {
        let _ = write!(out, ",\"request_id\":{id}");
    }
    let _ = write!(
        out,
        ",\"window_ns\":{window_ns},\"captured_spans\":{},\"overwritten\":{overwritten},\
         \"dropped_events\":{}",
        trace.events.len(),
        span::dropped_events()
    );
    out.push_str(",\"exemplars\":[");
    for (i, e) in exemplars().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"request_id\":{},\"class\":\"{}\",\"latency_ns\":{},\"ts_ns\":{}}}",
            e.request_id, e.class, e.latency_ns, e.ts_ns
        );
    }
    out.push_str("],\"metrics\":");
    out.push_str(metrics.trim_end());
    out.push_str("},\"traceEvents\":[");
    crate::export::push_trace_events(&mut out, &trace);
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_json;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kdv-ring-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let _x = span::exclusive();
        set_recording(false);
        clear();
        {
            let _g = span::span("ring.off");
        }
        let (trace, overwritten) = snapshot(u64::MAX);
        assert!(trace.events.iter().all(|e| e.name != "ring.off"), "{trace:?}");
        assert_eq!(overwritten, 0);
    }

    #[test]
    fn completed_spans_land_in_the_ring_with_merged_args() {
        let _x = span::exclusive();
        set_recording(true);
        clear();
        {
            let mut g = span::span1("ring.span", "a", 1);
            g.arg("b", 2);
        }
        set_recording(false);
        let (trace, _) = snapshot(u64::MAX);
        let e = trace.events.iter().find(|e| e.name == "ring.span").expect("recorded");
        assert_eq!(e.args.as_slice(), &[("a", 1), ("b", 2)]);
        clear();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let _x = span::exclusive();
        clear();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            record_completed("ring.fill", i, 1, SpanArgs::default());
        }
        let (trace, overwritten) = snapshot_at(RING_CAPACITY as u64 + 10, u64::MAX);
        let fills: Vec<&TraceEvent> =
            trace.events.iter().filter(|e| e.name == "ring.fill").collect();
        assert_eq!(fills.len(), RING_CAPACITY);
        assert_eq!(overwritten, 10);
        // the 10 oldest were overwritten, so the earliest survivor is ts 10
        assert_eq!(fills.iter().map(|e| e.ts_ns).min(), Some(10));
        clear();
    }

    #[test]
    fn snapshot_window_filters_by_end_time() {
        let _x = span::exclusive();
        clear();
        record_completed("ring.old", 100, 50, SpanArgs::default());
        record_completed("ring.new", 900, 50, SpanArgs::default());
        let (trace, _) = snapshot_at(1000, 200);
        assert!(trace.events.iter().any(|e| e.name == "ring.new"));
        assert!(!trace.events.iter().any(|e| e.name == "ring.old"));
        clear();
    }

    #[test]
    fn trigger_writes_one_valid_incident_and_cools_down() {
        let _x = span::exclusive();
        let dir = temp_dir("trigger");
        clear();
        arm_incidents(IncidentConfig::new(dir.clone()));
        {
            let _g = span::span1("ring.incident", "req", 42);
        }
        note_exemplar(42, "exact", 7_000_000);
        let path = trigger("test.kind", Some(42)).expect("armed trigger writes a dump");
        assert!(path.file_name().unwrap().to_str().unwrap().contains("test-kind"));
        let body = std::fs::read_to_string(&path).unwrap();
        validate_json(&body).unwrap_or_else(|off| panic!("invalid JSON at {off}: {body}"));
        for key in [
            "\"trigger\":\"test.kind\"",
            "\"request_id\":42",
            "\"ring.incident\"",
            "\"req\":42",
            "\"exemplars\":[{\"request_id\":42,\"class\":\"exact\"",
            "\"metrics\":",
            "\"traceEvents\":",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        // same kind inside the cooldown is suppressed
        assert_eq!(trigger("test.kind", None), None);
        // a different kind fires independently
        assert!(trigger("other.kind", None).is_some());
        disarm_incidents();
        assert_eq!(trigger("test.kind", None), None, "disarmed trigger is inert");
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_cap_limits_incident_files() {
        let _x = span::exclusive();
        let dir = temp_dir("cap");
        clear();
        let mut config = IncidentConfig::new(dir.clone());
        config.cooldown_ns = 0;
        config.max_dumps = 2;
        arm_incidents(config);
        assert!(trigger("cap.kind", None).is_some());
        assert!(trigger("cap.kind", None).is_some());
        assert_eq!(trigger("cap.kind", None), None, "third dump is over the cap");
        disarm_incidents();
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exemplar_store_keeps_newest() {
        let _x = span::exclusive();
        clear();
        for i in 0..(MAX_EXEMPLARS as u64 + 5) {
            note_exemplar(i, "live", i);
        }
        let ex = exemplars();
        assert_eq!(ex.len(), MAX_EXEMPLARS);
        assert_eq!(ex.first().map(|e| e.request_id), Some(5));
        assert_eq!(ex.last().map(|e| e.request_id), Some(MAX_EXEMPLARS as u64 + 4));
        clear();
    }
}
