//! Small numeric helpers shared by `kdv-core` telemetry and the bench
//! binaries (previously copy-pasted nearest-rank percentile and median
//! implementations).

/// Nearest-rank percentile of `values` at quantile `q in [0,1]`
/// (`rank = round(q * (len-1))`), or `None` when empty. Matches the
/// semantics `SweepReport::envelope_percentile` has always used.
pub fn percentile_u64(values: &[u64], q: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Nearest-rank percentile for floating-point samples (total order via
/// `f64::total_cmp`, so NaN sorts last instead of poisoning the sort).
pub fn percentile_f64(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Median of floating-point samples (nearest-rank, `None` when empty) —
/// the helper the bench binaries each reimplemented inline.
pub fn median_f64(values: &[f64]) -> Option<f64> {
    percentile_f64(values, 0.5)
}

/// Nanoseconds to milliseconds — the conversion every latency printer
/// in the CLI and bench binaries open-coded as `ns as f64 / 1e6`.
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The canonical `p50 X ms, p99 Y ms` fragment the CLI front-end
/// summary, the serve bench and the flight bench all print.
pub fn fmt_p50_p99_ms(p50_ns: u64, p99_ns: u64) -> String {
    format!("p50 {:.3} ms, p99 {:.3} ms", ns_to_ms(p50_ns), ns_to_ms(p99_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_u64_nearest_rank() {
        let v = [5u64, 1, 9, 3, 7];
        assert_eq!(percentile_u64(&v, 0.0), Some(1));
        assert_eq!(percentile_u64(&v, 0.5), Some(5));
        assert_eq!(percentile_u64(&v, 1.0), Some(9));
        // q = 0.9 -> rank round(3.6) = 4
        assert_eq!(percentile_u64(&v, 0.9), Some(9));
        // q = 0.6 -> rank round(2.4) = 2
        assert_eq!(percentile_u64(&v, 0.6), Some(5));
        assert_eq!(percentile_u64(&[], 0.5), None);
        // out-of-range q clamps
        assert_eq!(percentile_u64(&v, -1.0), Some(1));
        assert_eq!(percentile_u64(&v, 2.0), Some(9));
    }

    /// Recorded regression: percentiles are permutation-invariant, ties
    /// included. `SweepReport` feeds per-row band sizes in whatever order
    /// the rows were processed (which the parallel driver permutes), so a
    /// rank picked from an unsorted or unstably-tied slice would make the
    /// telemetry output depend on thread scheduling.
    #[test]
    fn percentile_invariant_under_permutation_and_ties() {
        let base = [4u64, 7, 7, 1, 7, 2, 9, 1, 7, 3];
        // a handful of distinct permutations, including reversed and
        // tie-adjacent swaps
        let mut perms: Vec<Vec<u64>> = vec![base.to_vec()];
        let mut rev = base.to_vec();
        rev.reverse();
        perms.push(rev);
        let mut rot = base.to_vec();
        rot.rotate_left(3);
        perms.push(rot);
        let mut swapped = base.to_vec();
        swapped.swap(1, 4); // swaps two equal values across a distinct one
        swapped.swap(0, 9);
        perms.push(swapped);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let want = percentile_u64(&base, q);
            for p in &perms {
                assert_eq!(percentile_u64(p, q), want, "q={q} perm={p:?}");
            }
        }
        // same property for the float variant, with tied samples
        let fbase = [2.5, 1.0, 2.5, 0.5, 2.5, 9.0];
        let mut frev = fbase.to_vec();
        frev.reverse();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(percentile_f64(&fbase, q), percentile_f64(&frev, q), "q={q}");
        }
    }

    #[test]
    fn median_f64_matches_sorted_middle() {
        assert_eq!(median_f64(&[3.0, 1.0, 2.0]), Some(2.0));
        // even length: nearest-rank rounds half up, so the upper middle
        assert_eq!(median_f64(&[4.0, 1.0, 3.0, 2.0]), Some(3.0));
        assert_eq!(median_f64(&[]), None);
        assert_eq!(median_f64(&[7.5]), Some(7.5));
    }

    #[test]
    fn percentile_f64_tolerates_nan() {
        let v = [1.0, f64::NAN, 2.0];
        assert_eq!(percentile_f64(&v, 0.0), Some(1.0));
        assert_eq!(percentile_f64(&v, 0.5), Some(2.0));
    }
}
