//! Network Kernel Density Visualization (NKDV).
//!
//! Instead of colouring raster pixels, NKDV colours *lixels* — fixed-length
//! subdivisions of the road edges — by the kernel density over **network**
//! (shortest-path) distance:
//!
//! ```text
//! F(l) = Σ_i w · K(dist_net(l, p_i))
//! ```
//!
//! Road-bound events (traffic accidents, street crime) concentrate on the
//! network, and planar KDV smears their density across block interiors;
//! NKDV confines it to the roads (Chan et al., PVLDB 2021 — named in the
//! paper's future work).
//!
//! The evaluator uses the *forward augmentation* strategy: one bounded
//! Dijkstra per event, then each reached edge's lixels receive the event's
//! kernel contribution in closed form via the edge-endpoint distances —
//! `O(n · (Dijkstra(b) + touched lixels))` instead of the naive
//! `O(L · n · Dijkstra)`.

use kdv_core::geom::Point;
use kdv_core::kernel::KernelType;
use kdv_core::stats::Kahan;
use kdv_core::{KdvError, Result};

use crate::dijkstra::{network_distance, BoundedDijkstra};
use crate::graph::{EdgeId, NetPosition, RoadNetwork};

/// Parameters of one NKDV computation.
#[derive(Debug, Clone, Copy)]
pub struct NkdvParams {
    /// Kernel applied to network distance (Table-2 kernels; evaluated in
    /// one dimension: `K(d) = shape(d/b)` with the same formulas).
    pub kernel: KernelType,
    /// Network-distance bandwidth in metres.
    pub bandwidth: f64,
    /// Target lixel length in metres; every edge gets
    /// `ceil(len / lixel_length)` equal lixels.
    pub lixel_length: f64,
    /// Normalisation constant `w`.
    pub weight: f64,
}

impl NkdvParams {
    /// Rejects non-positive / non-finite bandwidths and lixel lengths and
    /// a non-finite weight — shared by both NKDV evaluators so neither can
    /// panic or emit NaN lixels on bad input.
    pub fn validate(&self) -> Result<()> {
        if !self.bandwidth.is_finite() || self.bandwidth <= 0.0 {
            return Err(KdvError::InvalidBandwidth(self.bandwidth));
        }
        if !self.lixel_length.is_finite() || self.lixel_length <= 0.0 {
            return Err(KdvError::InvalidLixelLength(self.lixel_length));
        }
        if !self.weight.is_finite() {
            return Err(KdvError::InvalidWeight(self.weight));
        }
        Ok(())
    }
}

/// Densities over all lixels of a network.
#[derive(Debug, Clone)]
pub struct NetworkDensity {
    /// `lixel_start[e] .. lixel_start[e+1]` indexes edge `e`'s lixels.
    lixel_start: Vec<u32>,
    /// Flat per-lixel density values.
    values: Vec<f64>,
}

impl NetworkDensity {
    /// Number of lixels in total.
    pub fn num_lixels(&self) -> usize {
        self.values.len()
    }

    /// Density values of one edge's lixels, in offset order.
    pub fn edge_values(&self, e: EdgeId) -> &[f64] {
        &self.values
            [self.lixel_start[e as usize] as usize..self.lixel_start[e as usize + 1] as usize]
    }

    /// Flat view of all lixel densities.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Maximum lixel density.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Iterates `(edge, lixel_index_within_edge, density)`.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, usize, f64)> + '_ {
        (0..self.lixel_start.len() - 1).flat_map(move |e| {
            let s = self.lixel_start[e] as usize;
            let t = self.lixel_start[e + 1] as usize;
            (s..t).map(move |i| (e as EdgeId, i - s, self.values[i]))
        })
    }
}

/// Lixelisation of a network: per-edge lixel counts and centre offsets.
#[derive(Debug, Clone)]
pub struct Lixels {
    lixel_start: Vec<u32>,
    /// Centre offset of every lixel along its edge.
    centers: Vec<f64>,
}

impl Lixels {
    /// Splits every edge into `ceil(len / lixel_length)` equal lixels.
    pub fn build(network: &RoadNetwork, lixel_length: f64) -> Self {
        assert!(lixel_length > 0.0, "lixel length must be positive");
        let mut lixel_start = Vec::with_capacity(network.num_edges() + 1);
        let mut centers = Vec::new();
        lixel_start.push(0u32);
        for e in 0..network.num_edges() {
            let (_, _, len) = network.edge_info(e as EdgeId);
            let count = (len / lixel_length).ceil().max(1.0) as usize;
            let step = len / count as f64;
            for i in 0..count {
                centers.push((i as f64 + 0.5) * step);
            }
            lixel_start.push(centers.len() as u32);
        }
        Self { lixel_start, centers }
    }

    /// Total number of lixels.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the network had no edges.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Centre offsets of one edge's lixels.
    pub fn edge_centers(&self, e: EdgeId) -> &[f64] {
        &self.centers
            [self.lixel_start[e as usize] as usize..self.lixel_start[e as usize + 1] as usize]
    }

    /// The network position of a lixel (for rendering/debugging).
    pub fn position(&self, network: &RoadNetwork, e: EdgeId, i: usize) -> NetPosition {
        let _ = network;
        NetPosition { edge: e, offset: self.edge_centers(e)[i] }
    }
}

/// One-dimensional kernel evaluation over a network distance.
#[inline]
fn kernel_1d(kernel: KernelType, d: f64, b: f64) -> f64 {
    if d > b {
        return 0.0;
    }
    match kernel {
        KernelType::Uniform => 1.0 / b,
        KernelType::Epanechnikov => 1.0 - (d * d) / (b * b),
        KernelType::Quartic => {
            let t = 1.0 - (d * d) / (b * b);
            t * t
        }
    }
}

/// Computes NKDV with forward augmentation (one bounded Dijkstra per
/// event).
///
/// ```
/// use kdv_core::KernelType;
/// use kdv_network::{compute_nkdv, NetPosition, NkdvParams, RoadNetwork};
///
/// let city = RoadNetwork::grid_city(4, 4, 100.0, 1.0, 7);
/// let params = NkdvParams {
///     kernel: KernelType::Epanechnikov,
///     bandwidth: 150.0,
///     lixel_length: 25.0,
///     weight: 1.0,
/// };
/// let accidents = vec![NetPosition { edge: 0, offset: 40.0 }];
/// let density = compute_nkdv(&city, &params, &accidents)?;
/// assert!(density.max_value() > 0.0);
/// assert_eq!(density.edge_values(0).len(), 4); // 100 m edge, 25 m lixels
/// # Ok::<(), kdv_core::KdvError>(())
/// ```
///
/// # Errors
/// [`KdvError::InvalidBandwidth`] / [`KdvError::InvalidLixelLength`] /
/// [`KdvError::InvalidWeight`] for non-finite or non-positive parameters.
pub fn compute_nkdv(
    network: &RoadNetwork,
    params: &NkdvParams,
    events: &[NetPosition],
) -> Result<NetworkDensity> {
    params.validate()?;
    let lixels = Lixels::build(network, params.lixel_length);
    let mut acc: Vec<Kahan> = vec![Kahan::new(); lixels.len()];
    let b = params.bandwidth;
    let mut dijkstra = BoundedDijkstra::new(network.num_nodes());

    for event in events {
        let event = network.clamp_position(*event);
        dijkstra.run(network, &event, b);
        // contribute to every edge with a reachable endpoint
        for e in 0..network.num_edges() as EdgeId {
            let (u, v, len) = network.edge_info(e);
            let du = dijkstra.distance(u);
            let dv = dijkstra.distance(v);
            let same_edge = e == event.edge;
            if du > b && dv > b && !same_edge {
                continue;
            }
            let start = lixels.lixel_start[e as usize] as usize;
            for (i, &t) in lixels.edge_centers(e).iter().enumerate() {
                let mut d = f64::min(du + t, dv + (len - t));
                if same_edge {
                    d = d.min((t - event.offset).abs());
                }
                if d <= b {
                    acc[start + i].add(kernel_1d(params.kernel, d, b));
                }
            }
        }
    }
    Ok(NetworkDensity {
        lixel_start: lixels.lixel_start,
        values: acc.into_iter().map(|k| params.weight * k.value()).collect(),
    })
}

/// Naive reference: per lixel, per event, a full shortest-path
/// computation. `O(L · n · Dijkstra)` — tests and tiny graphs only.
///
/// # Errors
/// Same parameter validation as [`compute_nkdv`].
pub fn compute_nkdv_naive(
    network: &RoadNetwork,
    params: &NkdvParams,
    events: &[NetPosition],
) -> Result<NetworkDensity> {
    params.validate()?;
    let lixels = Lixels::build(network, params.lixel_length);
    let mut values = vec![0.0_f64; lixels.len()];
    for e in 0..network.num_edges() as EdgeId {
        let start = lixels.lixel_start[e as usize] as usize;
        for (i, &t) in lixels.edge_centers(e).iter().enumerate() {
            let lixel_pos = NetPosition { edge: e, offset: t };
            let mut acc = Kahan::new();
            for event in events {
                let d = network_distance(network, &lixel_pos, &network.clamp_position(*event));
                acc.add(kernel_1d(params.kernel, d, params.bandwidth));
            }
            values[start + i] = params.weight * acc.value();
        }
    }
    Ok(NetworkDensity { lixel_start: lixels.lixel_start, values })
}

/// Convenience: planar points of every lixel centre paired with its
/// density — the rendering primitive (draw coloured road segments).
pub fn lixel_points(
    network: &RoadNetwork,
    density: &NetworkDensity,
    lixel_length: f64,
) -> Vec<(Point, f64)> {
    let lixels = Lixels::build(network, lixel_length);
    density
        .iter()
        .map(|(e, i, v)| {
            let pos = lixels.position(network, e, i);
            (network.position_point(&pos), v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RoadNetwork {
        RoadNetwork::grid_city(5, 4, 100.0, 1.0, 1)
    }

    fn params(kernel: KernelType) -> NkdvParams {
        NkdvParams { kernel, bandwidth: 150.0, lixel_length: 25.0, weight: 1.0 }
    }

    fn spread_events(network: &RoadNetwork, n: usize, seed: u64) -> Vec<NetPosition> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let edge = (next() * network.num_edges() as f64) as u32;
                let (_, _, len) = network.edge_info(edge);
                NetPosition { edge, offset: next() * len }
            })
            .collect()
    }

    #[test]
    fn forward_matches_naive_for_all_kernels() {
        let g = grid();
        let events = spread_events(&g, 40, 11);
        for kernel in KernelType::ALL {
            let p = params(kernel);
            let fast = compute_nkdv(&g, &p, &events).unwrap();
            let slow = compute_nkdv_naive(&g, &p, &events).unwrap();
            assert_eq!(fast.num_lixels(), slow.num_lixels());
            let scale = slow.max_value().max(1e-300);
            for (a, b) in fast.values().iter().zip(slow.values()) {
                assert!((a - b).abs() / scale < 1e-12, "{kernel}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn single_event_profile_on_a_path() {
        // straight road 0 -100- 1 -100- 2; event at the middle of edge 0
        let g = RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(200.0, 0.0)],
            &[(0, 1, 100.0), (1, 2, 100.0)],
        );
        let p = NkdvParams {
            kernel: KernelType::Epanechnikov,
            bandwidth: 80.0,
            lixel_length: 10.0,
            weight: 1.0,
        };
        let density = compute_nkdv(&g, &p, &[NetPosition { edge: 0, offset: 50.0 }]).unwrap();
        let edge0 = density.edge_values(0);
        assert_eq!(edge0.len(), 10);
        // peak at the lixel containing the event (centre 45 or 55)
        let peak_idx = edge0.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!(peak_idx == 4 || peak_idx == 5, "peak at {peak_idx}");
        // symmetric around the event
        assert!((edge0[4] - edge0[5]).abs() < 1e-12);
        // density on edge 1 beyond the bandwidth (dist > 80 from offset 50)
        let edge1 = density.edge_values(1);
        // lixel centres 5, 15, 25 on edge 1 are at network dist 55, 65, 75
        assert!(edge1[0] > 0.0 && edge1[1] > 0.0 && edge1[2] > 0.0);
        assert_eq!(edge1[4], 0.0, "dist 95 > b = 80");
    }

    #[test]
    fn network_confines_density_unlike_planar() {
        // two parallel roads 10 m apart, NOT connected: an event on road A
        // must contribute nothing to road B even though it is planar-close
        let g = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(100.0, 10.0),
            ],
            &[(0, 1, 100.0), (2, 3, 100.0)],
        );
        let p = params(KernelType::Epanechnikov);
        let density = compute_nkdv(&g, &p, &[NetPosition { edge: 0, offset: 50.0 }]).unwrap();
        assert!(density.edge_values(0).iter().any(|&v| v > 0.0));
        assert!(
            density.edge_values(1).iter().all(|&v| v == 0.0),
            "disconnected road must stay dark"
        );
    }

    #[test]
    fn lixel_counts_and_centers() {
        let g = grid();
        let lx = Lixels::build(&g, 30.0);
        // every 100 m edge gets ceil(100/30) = 4 lixels of 25 m
        assert_eq!(lx.len(), g.num_edges() * 4);
        assert_eq!(lx.edge_centers(0), &[12.5, 37.5, 62.5, 87.5]);
    }

    #[test]
    fn weight_scales_output() {
        let g = grid();
        let events = spread_events(&g, 10, 3);
        let mut p = params(KernelType::Quartic);
        let base = compute_nkdv(&g, &p, &events).unwrap();
        p.weight = 2.0;
        let doubled = compute_nkdv(&g, &p, &events).unwrap();
        for (a, b) in base.values().iter().zip(doubled.values()) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_events_zero_density() {
        let g = grid();
        let density = compute_nkdv(&g, &params(KernelType::Uniform), &[]).unwrap();
        assert_eq!(density.max_value(), 0.0);
        assert!(density.num_lixels() > 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = grid();
        let events = spread_events(&g, 3, 9);
        for bad_b in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let mut p = params(KernelType::Epanechnikov);
            p.bandwidth = bad_b;
            assert!(
                matches!(compute_nkdv(&g, &p, &events), Err(KdvError::InvalidBandwidth(_))),
                "bandwidth {bad_b} must be rejected"
            );
            assert!(compute_nkdv_naive(&g, &p, &events).is_err());
        }
        for bad_l in [0.0, -1.0, f64::NAN] {
            let mut p = params(KernelType::Uniform);
            p.lixel_length = bad_l;
            assert!(
                matches!(compute_nkdv(&g, &p, &events), Err(KdvError::InvalidLixelLength(_))),
                "lixel length {bad_l} must be rejected"
            );
        }
        let mut p = params(KernelType::Quartic);
        p.weight = f64::NAN;
        assert!(matches!(compute_nkdv(&g, &p, &events), Err(KdvError::InvalidWeight(_))));
    }

    #[test]
    fn lixel_points_follow_geometry() {
        let g =
            RoadNetwork::new(vec![Point::new(0.0, 0.0), Point::new(40.0, 0.0)], &[(0, 1, 40.0)]);
        let p = NkdvParams {
            kernel: KernelType::Uniform,
            bandwidth: 10.0,
            lixel_length: 20.0,
            weight: 1.0,
        };
        let density = compute_nkdv(&g, &p, &[NetPosition { edge: 0, offset: 0.0 }]).unwrap();
        let pts = lixel_points(&g, &density, 20.0);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, Point::new(10.0, 0.0));
        assert_eq!(pts[1].0, Point::new(30.0, 0.0));
        assert!(pts[0].1 > 0.0);
        assert_eq!(pts[1].1, 0.0);
    }
}
