//! Bounded Dijkstra over the road network.
//!
//! NKDV needs, per event, the network distance to every node within the
//! bandwidth `b` — a Dijkstra run cut off at `b`. The searcher keeps its
//! distance array and a visit list across runs so per-event resets cost
//! `O(touched)` instead of `O(V)`.

use std::collections::BinaryHeap;

use crate::graph::{NetPosition, NodeId, RoadNetwork};

/// Min-heap entry (BinaryHeap is a max-heap, so order is reversed).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.dist.total_cmp(&self.dist)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable bounded-Dijkstra state.
pub struct BoundedDijkstra {
    dist: Vec<f64>,
    touched: Vec<NodeId>,
    heap: BinaryHeap<HeapEntry>,
}

impl BoundedDijkstra {
    /// A searcher for networks with up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self { dist: vec![f64::INFINITY; num_nodes], touched: Vec::new(), heap: BinaryHeap::new() }
    }

    /// Runs Dijkstra from a network position, stopping at `bound`.
    /// Afterwards [`BoundedDijkstra::distance`] returns each node's
    /// network distance (∞ when farther than `bound`), and
    /// [`BoundedDijkstra::reached`] lists every settled or touched node.
    pub fn run(&mut self, network: &RoadNetwork, source: &NetPosition, bound: f64) {
        // reset previous run
        for &u in &self.touched {
            self.dist[u as usize] = f64::INFINITY;
        }
        self.touched.clear();
        self.heap.clear();

        let (from, to, length) = network.edge_info(source.edge);
        let offset = source.offset.clamp(0.0, length);
        // seed both endpoints of the source edge
        let seeds = [(from, offset), (to, length - offset)];
        for (node, d) in seeds {
            if d <= bound && d < self.dist[node as usize] {
                if self.dist[node as usize].is_infinite() {
                    self.touched.push(node);
                }
                self.dist[node as usize] = d;
                self.heap.push(HeapEntry { dist: d, node });
            }
        }
        while let Some(HeapEntry { dist, node }) = self.heap.pop() {
            if dist > self.dist[node as usize] {
                continue; // stale entry
            }
            for &(v, e) in network.neighbors(node) {
                let (_, _, elen) = network.edge_info(e);
                let nd = dist + elen;
                if nd <= bound && nd < self.dist[v as usize] {
                    if self.dist[v as usize].is_infinite() {
                        self.touched.push(v);
                    }
                    self.dist[v as usize] = nd;
                    self.heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
    }

    /// Network distance of `u` from the last run's source (∞ if beyond
    /// the bound or unreached).
    #[inline]
    pub fn distance(&self, u: NodeId) -> f64 {
        self.dist[u as usize]
    }

    /// Nodes touched by the last run.
    pub fn reached(&self) -> &[NodeId] {
        &self.touched
    }
}

/// Network distance between two positions (unbounded Dijkstra; intended
/// for tests and small workloads). Handles the same-edge shortcut.
pub fn network_distance(network: &RoadNetwork, a: &NetPosition, b: &NetPosition) -> f64 {
    let mut best = f64::INFINITY;
    if a.edge == b.edge {
        best = (a.offset - b.offset).abs();
    }
    let mut search = BoundedDijkstra::new(network.num_nodes());
    search.run(network, a, f64::INFINITY);
    let (bf, bt, blen) = network.edge_info(b.edge);
    let via_from = search.distance(bf) + b.offset;
    let via_to = search.distance(bt) + (blen - b.offset);
    best.min(via_from).min(via_to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::geom::Point;

    /// 0 -10- 1 -20- 2, plus a 5-metre shortcut edge 0 - 2.
    fn shortcut_graph() -> RoadNetwork {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(30.0, 0.0)],
            &[(0, 1, 10.0), (1, 2, 20.0), (0, 2, 5.0)],
        )
    }

    #[test]
    fn distances_from_mid_edge() {
        let g = shortcut_graph();
        let mut d = BoundedDijkstra::new(g.num_nodes());
        // source 3 metres along edge 0 (between nodes 0 and 1)
        d.run(&g, &NetPosition { edge: 0, offset: 3.0 }, f64::INFINITY);
        assert_eq!(d.distance(0), 3.0);
        assert_eq!(d.distance(1), 7.0);
        // node 2: via shortcut 3 + 5 = 8 (beats 7 + 20)
        assert_eq!(d.distance(2), 8.0);
    }

    #[test]
    fn bound_cuts_off_search() {
        let g = shortcut_graph();
        let mut d = BoundedDijkstra::new(g.num_nodes());
        d.run(&g, &NetPosition { edge: 0, offset: 0.0 }, 4.9);
        assert_eq!(d.distance(0), 0.0);
        assert!(d.distance(1).is_infinite());
        assert!(d.distance(2).is_infinite());
        assert_eq!(d.reached(), &[0]);
    }

    #[test]
    fn reuse_resets_state() {
        let g = shortcut_graph();
        let mut d = BoundedDijkstra::new(g.num_nodes());
        d.run(&g, &NetPosition { edge: 1, offset: 0.0 }, f64::INFINITY);
        assert_eq!(d.distance(1), 0.0);
        d.run(&g, &NetPosition { edge: 2, offset: 0.0 }, 1.0);
        assert_eq!(d.distance(0), 0.0);
        assert!(d.distance(1).is_infinite(), "stale distance must be cleared");
    }

    #[test]
    fn same_edge_distance_shortcut() {
        let g = shortcut_graph();
        let a = NetPosition { edge: 1, offset: 2.0 };
        let b = NetPosition { edge: 1, offset: 18.0 };
        // along the edge: 16; around via nodes: 2 + (10+5) + 2 = way more
        assert_eq!(network_distance(&g, &a, &b), 16.0);
    }

    #[test]
    fn cross_edge_distance_picks_best_endpoint() {
        let g = shortcut_graph();
        let a = NetPosition { edge: 0, offset: 0.0 }; // at node 0
        let b = NetPosition { edge: 1, offset: 15.0 }; // 15 from node 1, 5 from node 2
                                                       // via node 1: 10 + 15 = 25; via node 2 (shortcut): 5 + 5 = 10
        assert_eq!(network_distance(&g, &a, &b), 10.0);
    }

    /// Network distance around a detour can exceed straight-line distance
    /// on the same edge — the same-edge shortcut must win.
    #[test]
    fn same_edge_beats_detour() {
        // two nodes joined by a long edge AND a long detour
        let g = RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(50.0, 80.0)],
            &[(0, 1, 100.0), (0, 2, 90.0), (2, 1, 90.0)],
        );
        let a = NetPosition { edge: 0, offset: 10.0 };
        let b = NetPosition { edge: 0, offset: 90.0 };
        assert_eq!(network_distance(&g, &a, &b), 80.0);
    }
}
