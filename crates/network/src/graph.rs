//! Road-network substrate: an undirected weighted graph with geometry.
//!
//! Nodes carry planar coordinates (junctions); edges carry positive
//! lengths (road segments). Adjacency is stored in CSR form for
//! cache-friendly Dijkstra. A seeded grid-city generator provides
//! realistic test networks (Manhattan-style lattices with random
//! omissions), and events are located *on* the network as
//! `(edge, offset)` positions.

use kdv_core::geom::Point;

/// Index of a node.
pub type NodeId = u32;
/// Index of an edge.
pub type EdgeId = u32;

/// A position on the network: `offset` metres from the `from`-endpoint of
/// `edge` (0 ≤ offset ≤ edge length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPosition {
    /// The edge the position lies on.
    pub edge: EdgeId,
    /// Distance from the edge's `from` endpoint, in metres.
    pub offset: f64,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: NodeId,
    to: NodeId,
    length: f64,
}

/// An undirected road network.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
    /// CSR adjacency: for node `u`, `adj[adj_start[u]..adj_start[u+1]]`
    /// holds `(neighbour, edge_id)` pairs.
    adj_start: Vec<u32>,
    adj: Vec<(NodeId, EdgeId)>,
}

impl RoadNetwork {
    /// Builds a network from node coordinates and undirected edges
    /// `(from, to, length)`.
    ///
    /// # Panics
    /// Panics if an edge references a missing node or has a non-positive
    /// length.
    pub fn new(nodes: Vec<Point>, edge_list: &[(NodeId, NodeId, f64)]) -> Self {
        let n = nodes.len();
        let edges: Vec<Edge> = edge_list
            .iter()
            .map(|&(from, to, length)| {
                assert!((from as usize) < n && (to as usize) < n, "edge endpoint out of range");
                assert!(length > 0.0 && length.is_finite(), "edge length must be positive");
                Edge { from, to, length }
            })
            .collect();
        // CSR build
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.from as usize] += 1;
            degree[e.to as usize] += 1;
        }
        let mut adj_start = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        adj_start.push(0);
        for d in &degree {
            acc += d;
            adj_start.push(acc);
        }
        let mut cursor = adj_start.clone();
        let mut adj = vec![(0u32, 0u32); acc as usize];
        for (eid, e) in edges.iter().enumerate() {
            adj[cursor[e.from as usize] as usize] = (e.to, eid as u32);
            cursor[e.from as usize] += 1;
            adj[cursor[e.to as usize] as usize] = (e.from, eid as u32);
            cursor[e.to as usize] += 1;
        }
        Self { nodes, edges, adj_start, adj }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Coordinates of a node.
    pub fn node_point(&self, u: NodeId) -> Point {
        self.nodes[u as usize]
    }

    /// `(from, to, length)` of an edge.
    pub fn edge_info(&self, e: EdgeId) -> (NodeId, NodeId, f64) {
        let edge = self.edges[e as usize];
        (edge.from, edge.to, edge.length)
    }

    /// Neighbours of `u` as `(neighbour, edge_id)` pairs.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[self.adj_start[u as usize] as usize..self.adj_start[u as usize + 1] as usize]
    }

    /// Planar coordinates of a network position (linear interpolation
    /// along the edge's straight-line geometry).
    pub fn position_point(&self, pos: &NetPosition) -> Point {
        let e = self.edges[pos.edge as usize];
        let a = self.nodes[e.from as usize];
        let b = self.nodes[e.to as usize];
        let t = (pos.offset / e.length).clamp(0.0, 1.0);
        Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    }

    /// Validates and clamps an offset onto its edge.
    pub fn clamp_position(&self, pos: NetPosition) -> NetPosition {
        let len = self.edges[pos.edge as usize].length;
        NetPosition { edge: pos.edge, offset: pos.offset.clamp(0.0, len) }
    }

    /// Total road length.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// Heap bytes held by the network.
    pub fn space_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Point>()
            + self.edges.capacity() * std::mem::size_of::<Edge>()
            + self.adj_start.capacity() * 4
            + self.adj.capacity() * 8
    }

    /// A seeded `w × h` grid city with `spacing` metres between junctions;
    /// `keep_fraction` of the lattice edges are kept (1.0 = full grid),
    /// but a spanning backbone (all horizontal rows) is always retained so
    /// the network stays connected.
    pub fn grid_city(w: usize, h: usize, spacing: f64, keep_fraction: f64, seed: u64) -> Self {
        assert!(w >= 2 && h >= 2, "grid must be at least 2x2");
        let mut nodes = Vec::with_capacity(w * h);
        for j in 0..h {
            for i in 0..w {
                nodes.push(Point::new(i as f64 * spacing, j as f64 * spacing));
            }
        }
        let id = |i: usize, j: usize| (j * w + i) as NodeId;
        let mut state = seed | 1;
        let mut chance = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut edges = Vec::new();
        for j in 0..h {
            for i in 0..w {
                // horizontal backbone: always kept
                if i + 1 < w {
                    edges.push((id(i, j), id(i + 1, j), spacing));
                }
                // vertical streets: kept with probability keep_fraction,
                // except the first column which ties the rows together
                if j + 1 < h && (i == 0 || chance() < keep_fraction) {
                    edges.push((id(i, j), id(i, j + 1), spacing));
                }
            }
        }
        Self::new(nodes, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 - 1 - 2 with lengths 10, 20.
    fn path() -> RoadNetwork {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(30.0, 0.0)],
            &[(0, 1, 10.0), (1, 2, 20.0)],
        )
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = path();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[(1, 0)]);
        assert_eq!(g.neighbors(2), &[(1, 1)]);
        let mid: Vec<NodeId> = g.neighbors(1).iter().map(|&(v, _)| v).collect();
        assert_eq!(mid, vec![0, 2]);
    }

    #[test]
    fn position_interpolation() {
        let g = path();
        let p = g.position_point(&NetPosition { edge: 1, offset: 5.0 });
        assert_eq!(p, Point::new(15.0, 0.0));
        let clamped = g.clamp_position(NetPosition { edge: 0, offset: 99.0 });
        assert_eq!(clamped.offset, 10.0);
    }

    #[test]
    fn grid_city_structure() {
        let g = RoadNetwork::grid_city(4, 3, 100.0, 1.0, 7);
        assert_eq!(g.num_nodes(), 12);
        // full lattice: 3·3 horizontal + 4·2 vertical = 17 edges
        assert_eq!(g.num_edges(), 17);
        assert!((g.total_length() - 1700.0).abs() < 1e-9);
    }

    #[test]
    fn grid_city_stays_connected_when_sparse() {
        let g = RoadNetwork::grid_city(6, 6, 50.0, 0.0, 3);
        // BFS from node 0 must reach everything (backbone + first column)
        let mut seen = vec![false; g.num_nodes()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "sparse grid city must stay connected");
    }

    #[test]
    #[should_panic(expected = "length")]
    fn zero_length_edge_rejected() {
        let _ = RoadNetwork::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], &[(0, 1, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_rejected() {
        let _ = RoadNetwork::new(vec![Point::new(0.0, 0.0)], &[(0, 5, 1.0)]);
    }
}
