//! # kdv-network — Network Kernel Density Visualization (NKDV)
//!
//! The paper's conclusion names NKDV (Chan et al., PVLDB 2021) as a KDV
//! variant to support next. This crate builds it from scratch:
//!
//! * [`graph`] — the road-network substrate: CSR adjacency, on-network
//!   event positions, a seeded grid-city generator.
//! * [`dijkstra`] — bounded shortest-path search with reusable state
//!   (one run per event).
//! * [`nkdv`] — lixel subdivision and the forward-augmentation NKDV
//!   evaluator, with a naive reference implementation for testing.
//!
//! Planar KDV smears road-bound events (accidents, street crime) across
//! block interiors; NKDV confines density to the network by replacing
//! Euclidean with shortest-path distance.

pub mod dijkstra;
pub mod graph;
pub mod nkdv;

pub use dijkstra::{network_distance, BoundedDijkstra};
pub use graph::{NetPosition, RoadNetwork};
pub use nkdv::{compute_nkdv, compute_nkdv_naive, lixel_points, NetworkDensity, NkdvParams};
