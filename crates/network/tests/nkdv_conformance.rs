//! NKDV conformance on small hand-built graphs whose network distances
//! are known in closed form. The forward-augmentation evaluator
//! (`compute_nkdv`, one bounded Dijkstra per event) is checked against the
//! brute-force reference (`compute_nkdv_naive`, one full shortest-path
//! computation per lixel×event pair) and against hand-derived densities —
//! on topologies the random `grid_city` used by the unit tests cannot pin:
//! a cycle (two competing routes), a star (hub fan-out), and a
//! disconnected graph (unreachable component).

use kdv_core::{KdvError, KernelType, Point};
use kdv_network::{compute_nkdv, compute_nkdv_naive, NetPosition, NkdvParams, RoadNetwork};

fn params(kernel: KernelType, bandwidth: f64, lixel_length: f64) -> NkdvParams {
    NkdvParams { kernel, bandwidth, lixel_length, weight: 1.0 }
}

/// 1-D kernel profile, mirroring the Table-2 shapes over network distance.
fn kernel_1d(kernel: KernelType, d: f64, b: f64) -> f64 {
    if d > b {
        return 0.0;
    }
    match kernel {
        KernelType::Uniform => 1.0 / b,
        KernelType::Epanechnikov => 1.0 - (d * d) / (b * b),
        KernelType::Quartic => {
            let t = 1.0 - (d * d) / (b * b);
            t * t
        }
    }
}

fn assert_agree(network: &RoadNetwork, p: &NkdvParams, events: &[NetPosition], label: &str) {
    let fast = compute_nkdv(network, p, events).unwrap();
    let naive = compute_nkdv_naive(network, p, events).unwrap();
    assert_eq!(fast.num_lixels(), naive.num_lixels(), "{label}: lixel count mismatch");
    let peak = naive.max_value().max(1e-300);
    for (i, (a, b)) in fast.values().iter().zip(naive.values()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * peak,
            "{label}/{:?} lixel {i}: forward {a} vs naive {b}",
            p.kernel
        );
    }
}

/// Path A—B—C with two 100 m edges.
fn path_graph() -> RoadNetwork {
    let nodes = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(200.0, 0.0)];
    RoadNetwork::new(nodes, &[(0, 1, 100.0), (1, 2, 100.0)])
}

/// Square cycle of four 100 m edges (0→1→2→3→0).
fn cycle_graph() -> RoadNetwork {
    let nodes = vec![
        Point::new(0.0, 0.0),
        Point::new(100.0, 0.0),
        Point::new(100.0, 100.0),
        Point::new(0.0, 100.0),
    ];
    RoadNetwork::new(nodes, &[(0, 1, 100.0), (1, 2, 100.0), (2, 3, 100.0), (3, 0, 100.0)])
}

/// Star: hub node 0 with four 80 m spokes.
fn star_graph() -> RoadNetwork {
    let nodes = vec![
        Point::new(0.0, 0.0),
        Point::new(80.0, 0.0),
        Point::new(0.0, 80.0),
        Point::new(-80.0, 0.0),
        Point::new(0.0, -80.0),
    ];
    RoadNetwork::new(nodes, &[(0, 1, 80.0), (0, 2, 80.0), (0, 3, 80.0), (0, 4, 80.0)])
}

/// Two disjoint 100 m segments: nodes {0,1} and {2,3} never connect.
fn disconnected_graph() -> RoadNetwork {
    let nodes = vec![
        Point::new(0.0, 0.0),
        Point::new(100.0, 0.0),
        Point::new(0.0, 500.0),
        Point::new(100.0, 500.0),
    ];
    RoadNetwork::new(nodes, &[(0, 1, 100.0), (2, 3, 100.0)])
}

#[test]
fn forward_matches_naive_on_every_hand_built_topology() {
    let cases: [(&str, RoadNetwork, Vec<NetPosition>); 4] = [
        ("path", path_graph(), vec![NetPosition { edge: 0, offset: 70.0 }]),
        (
            "cycle",
            cycle_graph(),
            vec![NetPosition { edge: 0, offset: 20.0 }, NetPosition { edge: 2, offset: 55.0 }],
        ),
        (
            "star",
            star_graph(),
            vec![NetPosition { edge: 1, offset: 30.0 }, NetPosition { edge: 3, offset: 79.0 }],
        ),
        ("disconnected", disconnected_graph(), vec![NetPosition { edge: 0, offset: 50.0 }]),
    ];
    for (label, network, events) in &cases {
        for kernel in KernelType::ALL {
            // bandwidth larger than any single edge so contributions cross
            // nodes, smaller than the total length so support is partial
            assert_agree(network, &params(kernel, 150.0, 10.0), events, label);
        }
    }
}

#[test]
fn path_density_matches_the_closed_form_profile() {
    // single event at offset 70 on edge 0: network distance to any lixel
    // is plain arc length along the path, so every lixel density is
    // w·K(|arc(lixel) − 70|)
    let network = path_graph();
    let event = NetPosition { edge: 0, offset: 70.0 };
    for kernel in KernelType::ALL {
        let p = params(kernel, 120.0, 20.0);
        let density = compute_nkdv_naive(&network, &p, &[event]).unwrap();
        for (e, i, v) in density.iter() {
            let arc = e as f64 * 100.0 + (i as f64 + 0.5) * 20.0;
            let expected = kernel_1d(kernel, (arc - 70.0).abs(), 120.0);
            assert!(
                (v - expected).abs() <= 1e-12 * expected.max(1.0),
                "{kernel:?} lixel at arc {arc}: {v} vs {expected}"
            );
        }
        // forward augmentation reproduces the same closed form
        let fast = compute_nkdv(&network, &p, &[event]).unwrap();
        assert_eq!(fast.values().len(), density.values().len());
    }
}

#[test]
fn cycle_distances_take_the_shorter_way_around() {
    // event at the midpoint of edge 0 (arc position 50 of 400). The
    // antipodal lixel (arc 250, midpoint of edge 2) is 200 m away in both
    // directions; closer lixels must use the min of the two routes.
    let network = cycle_graph();
    let event = NetPosition { edge: 0, offset: 50.0 };
    let p = params(KernelType::Epanechnikov, 220.0, 25.0);
    let density = compute_nkdv_naive(&network, &p, &[event]).unwrap();
    for (e, i, v) in density.iter() {
        let arc = e as f64 * 100.0 + (i as f64 + 0.5) * 25.0;
        let along = (arc - 50.0).abs();
        let d = along.min(400.0 - along);
        let expected = kernel_1d(KernelType::Epanechnikov, d, 220.0);
        assert!(
            (v - expected).abs() <= 1e-12,
            "cycle lixel at arc {arc}: {v} vs {expected} (d={d})"
        );
    }
    // symmetry: lixels equidistant clockwise/counter-clockwise agree
    let vals = density.values();
    let n = vals.len();
    // event sits exactly at the centre of lixel 2 of edge 0 (arc 50 with
    // 25 m lixels ⇒ mirror lixel k ↔ (3 − k) mod n under the arc reflection 100 − arc)
    for k in 0..n {
        let mirror = (n + 3 - k) % n;
        assert!(
            (vals[k] - vals[mirror]).abs() <= 1e-12,
            "cycle symmetry broken at lixel {k} vs {mirror}"
        );
    }
    assert_agree(&network, &p, &[event], "cycle-midpoint");
}

#[test]
fn star_spreads_density_through_the_hub() {
    // event 30 m out on spoke 1: distance to a lixel at offset t on any
    // OTHER spoke is 30 + t (through the hub); on its own spoke |t − 30|
    let network = star_graph();
    let event = NetPosition { edge: 0, offset: 30.0 };
    let p = params(KernelType::Quartic, 100.0, 16.0);
    let density = compute_nkdv_naive(&network, &p, &[event]).unwrap();
    for (e, i, v) in density.iter() {
        let t = (i as f64 + 0.5) * 16.0;
        let d = if e == 0 { (t - 30.0).abs() } else { 30.0 + t };
        let expected = kernel_1d(KernelType::Quartic, d, 100.0);
        assert!(
            (v - expected).abs() <= 1e-12,
            "star edge {e} lixel {i}: {v} vs {expected} (d={d})"
        );
    }
    // the three non-event spokes are interchangeable by symmetry
    let s1 = density.edge_values(1).to_vec();
    assert_eq!(density.edge_values(2), &s1[..]);
    assert_eq!(density.edge_values(3), &s1[..]);
    assert_agree(&network, &p, &[event], "star-hub");
}

#[test]
fn density_never_leaks_across_disconnected_components() {
    let network = disconnected_graph();
    let event = NetPosition { edge: 0, offset: 50.0 };
    // bandwidth far larger than either component: only connectivity, not
    // range, may confine the density
    for kernel in KernelType::ALL {
        let p = params(kernel, 10_000.0, 10.0);
        for density in [
            compute_nkdv(&network, &p, &[event]).unwrap(),
            compute_nkdv_naive(&network, &p, &[event]).unwrap(),
        ] {
            assert!(
                density.edge_values(0).iter().all(|&v| v > 0.0),
                "{kernel:?}: event component must be covered"
            );
            assert!(
                density.edge_values(1).iter().all(|&v| v == 0.0),
                "{kernel:?}: density leaked into a disconnected component"
            );
        }
    }
}

#[test]
fn both_evaluators_reject_bad_parameters_identically() {
    let network = path_graph();
    let events = [NetPosition { edge: 0, offset: 10.0 }];
    let base = params(KernelType::Epanechnikov, 100.0, 10.0);
    for (bad, check) in [
        (NkdvParams { bandwidth: 0.0, ..base }, "bandwidth"),
        (NkdvParams { bandwidth: f64::NAN, ..base }, "bandwidth"),
        (NkdvParams { lixel_length: -5.0, ..base }, "lixel"),
        (NkdvParams { weight: f64::INFINITY, ..base }, "weight"),
    ] {
        for result in
            [compute_nkdv(&network, &bad, &events), compute_nkdv_naive(&network, &bad, &events)]
        {
            let err = result.expect_err(check);
            let matches = matches!(
                (&err, check),
                (KdvError::InvalidBandwidth(_), "bandwidth")
                    | (KdvError::InvalidLixelLength(_), "lixel")
                    | (KdvError::InvalidWeight(_), "weight")
            );
            assert!(matches, "expected {check} error, got {err:?}");
        }
    }
}

#[test]
fn out_of_range_event_offsets_are_clamped_not_panicking() {
    // events dropped slightly off the end of an edge (GPS snap jitter)
    // must clamp to the edge and still agree across evaluators
    let network = cycle_graph();
    let events = [NetPosition { edge: 1, offset: -7.5 }, NetPosition { edge: 2, offset: 140.0 }];
    for kernel in KernelType::ALL {
        assert_agree(&network, &params(kernel, 180.0, 12.5), &events, "clamped-offsets");
    }
}
