//! Hotspot detection and ranking — the full KDV-to-decision pipeline.
//!
//! ```text
//! cargo run --release --example hotspot_ranking
//! ```
//!
//! Computes the exact KDV of the synthetic San Francisco 311-call feed,
//! extracts the hotspot regions at 30% of peak density, ranks them by
//! density mass, cross-checks the ranking against the generator's planted
//! hotspot mixture, and runs Ripley's K-function to confirm clustering —
//! exercising `kdv-core`, `kdv-data` and `kdv-analysis` together.

use slam_kdv::analysis::{hotspots_by_peak_fraction, k_function};
use slam_kdv::core::driver::KdvParams;
use slam_kdv::{City, GridSpec, KdvEngine, KernelType, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = City::SanFrancisco.dataset(0.002);
    let points = dataset.points();
    let mbr = dataset.mbr();
    let bandwidth = slam_kdv::data::scott_bandwidth(&points);
    println!("San Francisco 311 calls (synthetic): n={}, b={bandwidth:.0} m", points.len());

    // 1. exact KDV with the best SLAM variant
    let spec = GridSpec::new(mbr, 480, 480)?;
    let params =
        KdvParams::new(spec, KernelType::Quartic, bandwidth).with_weight(1.0 / points.len() as f64);
    let t0 = std::time::Instant::now();
    let grid = KdvEngine::new(Method::SlamBucketRao).compute(&params, &points)?;
    println!("KDV 480x480 in {:.1} ms\n", t0.elapsed().as_secs_f64() * 1e3);

    // 2. hotspot extraction + ranking
    let hotspots = hotspots_by_peak_fraction(&grid, &spec, 0.3);
    println!("{} hotspot region(s) at >= 30% of peak:", hotspots.len());
    println!(
        "{:<3} {:>8} {:>13} {:>10} {:>22}",
        "#", "pixels", "area (km^2)", "share", "centroid (m)"
    );
    let total_mass: f64 = hotspots.iter().map(|h| h.mass).sum();
    for (i, h) in hotspots.iter().take(8).enumerate() {
        println!(
            "{:<3} {:>8} {:>13.3} {:>9.1}% ({:>8.0}, {:>8.0})",
            i + 1,
            h.pixels,
            h.area / 1e6,
            100.0 * h.mass / total_mass,
            h.centroid.x,
            h.centroid.y
        );
    }

    // 3. compare with the planted mixture: the top hotspot should sit near
    //    one of the generator's configured centres
    let config = City::SanFrancisco.synth_config();
    if let Some(top) = hotspots.first() {
        let nearest = config
            .hotspots
            .iter()
            .map(|h| top.centroid.dist(&h.center))
            .fold(f64::INFINITY, f64::min);
        println!("\ntop hotspot centroid is {:.0} m from the nearest planted centre", nearest);
    }

    // 4. Ripley's K-function: quantify clustering at a few scales
    let radii = [100.0, 250.0, 500.0, 1_000.0];
    let t0 = std::time::Instant::now();
    let k = k_function(&points, mbr, &radii);
    println!("\nRipley's K ({} points, {:.1} ms):", points.len(), t0.elapsed().as_secs_f64() * 1e3);
    println!("{:>8} {:>14} {:>14} {:>10}", "r (m)", "K(r)", "pi r^2 (CSR)", "L(r)-r");
    for ((r, kv), l) in radii.iter().zip(&k.k_values).zip(k.l_minus_r()) {
        println!("{:>8.0} {:>14.0} {:>14.0} {:>10.1}", r, kv, std::f64::consts::PI * r * r, l);
    }
    println!("\nL(r) - r >> 0 at every scale: the 311 calls are strongly clustered,");
    println!("which is exactly the regime KDV hotspot maps are built for.");
    Ok(())
}
