//! Network KDV vs planar KDV on a road-bound workload.
//!
//! ```text
//! cargo run --release --example road_network_kdv
//! ```
//!
//! Generates a grid-city road network with accident events concentrated on
//! a few "dangerous" streets, computes the planar KDV (SLAM) and the
//! network KDV (NKDV), and shows why the network variant matters: planar
//! density bleeds across block interiors that contain no road at all,
//! while NKDV keeps every unit of density on the network.

use slam_kdv::core::driver::KdvParams;
use slam_kdv::core::geom::Point;
use slam_kdv::network::{compute_nkdv, lixel_points, NetPosition, NkdvParams, RoadNetwork};
use slam_kdv::viz::{render, ColorMap, Scale};
use slam_kdv::{GridSpec, KdvEngine, KernelType, Method, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a 12x9 grid city, 100 m blocks, with some streets missing
    let network = RoadNetwork::grid_city(12, 9, 100.0, 0.7, 42);
    println!(
        "road network: {} junctions, {} segments, {:.1} km of road",
        network.num_nodes(),
        network.num_edges(),
        network.total_length() / 1000.0
    );

    // events clustered on a handful of "dangerous" edges
    let mut state = 9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let hot_edges: Vec<u32> =
        (0..6).map(|_| (next() * network.num_edges() as f64) as u32).collect();
    let mut events = Vec::new();
    for _ in 0..600 {
        let edge = if next() < 0.7 {
            hot_edges[(next() * hot_edges.len() as f64) as usize]
        } else {
            (next() * network.num_edges() as f64) as u32
        };
        let (_, _, len) = network.edge_info(edge);
        events.push(NetPosition { edge, offset: next() * len });
    }
    println!("{} accidents, 70% on {} dangerous streets", events.len(), hot_edges.len());

    // 1. network KDV
    let nkdv_params = NkdvParams {
        kernel: KernelType::Epanechnikov,
        bandwidth: 220.0,
        lixel_length: 20.0,
        weight: 1.0 / events.len() as f64,
    };
    let t0 = std::time::Instant::now();
    let net_density = compute_nkdv(&network, &nkdv_params, &events)?;
    println!(
        "NKDV: {} lixels in {:.1} ms, peak {:.5}",
        net_density.num_lixels(),
        t0.elapsed().as_secs_f64() * 1e3,
        net_density.max_value()
    );

    // 2. planar KDV over the same events (projected to the plane)
    let planar_events: Vec<Point> = events.iter().map(|e| network.position_point(e)).collect();
    let region = Rect::new(-50.0, -50.0, 1_150.0, 850.0);
    let grid = GridSpec::new(region, 480, 360)?;
    let planar_params = KdvParams::new(grid, KernelType::Epanechnikov, 220.0)
        .with_weight(1.0 / planar_events.len() as f64);
    let t0 = std::time::Instant::now();
    let planar = KdvEngine::new(Method::SlamBucketRao).compute(&planar_params, &planar_events)?;
    println!(
        "planar SLAM KDV: 480x360 in {:.1} ms, peak {:.5}",
        t0.elapsed().as_secs_f64() * 1e3,
        planar.max_value()
    );
    render(&planar, ColorMap::Heat, Scale::Sqrt)
        .save_ppm(std::path::Path::new("road_planar.ppm"))?;

    // 3. rasterise the NKDV lixels into an image for comparison (each
    //    lixel painted as a dot at its centre)
    let mut net_grid = slam_kdv::DensityGrid::zeroed(480, 360);
    for (p, v) in lixel_points(&network, &net_density, nkdv_params.lixel_length) {
        let i = (((p.x - region.min_x) / region.width()) * 480.0) as usize;
        let j = (((p.y - region.min_y) / region.height()) * 360.0) as usize;
        if i < 480 && j < 360 && v > net_grid.get(i, j) {
            net_grid.set(i, j, v);
        }
    }
    render(&net_grid, ColorMap::Heat, Scale::Sqrt)
        .save_ppm(std::path::Path::new("road_network.ppm"))?;
    println!("wrote road_planar.ppm and road_network.ppm");

    // 4. quantify the difference: how much planar density falls on pixels
    //    farther than half a block from any road?
    let mut off_road = 0.0;
    let mut total = 0.0;
    for j in 0..360 {
        for i in 0..480 {
            let q = grid.pixel_center(i, j);
            // distance to the lattice (roads run on multiples of 100 m)
            let dx = (q.x / 100.0 - (q.x / 100.0).round()).abs() * 100.0;
            let dy = (q.y / 100.0 - (q.y / 100.0).round()).abs() * 100.0;
            let v = planar.get(i, j);
            total += v;
            if dx.min(dy) > 40.0 {
                off_road += v;
            }
        }
    }
    println!(
        "\nplanar KDV places {:.1}% of its density mass > 40 m from any road;",
        100.0 * off_road / total
    );
    println!("NKDV places 0% there by construction — the point of the network variant.");
    Ok(())
}
