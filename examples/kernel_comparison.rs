//! Kernel and method comparison on one dataset.
//!
//! ```text
//! cargo run --release --example kernel_comparison
//! ```
//!
//! Computes the same KDV with all three Table-2 kernels and all ten
//! Table-6 methods, verifying that every exact method produces the same
//! raster and showing how response times spread — a miniature of the
//! paper's Table 7 on a single dataset.

use slam_kdv::baselines::AnyMethod;
use slam_kdv::core::driver::KdvParams;
use slam_kdv::{City, GridSpec, KernelType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = City::LosAngeles.dataset(0.004);
    let points = dataset.points();
    let bandwidth = slam_kdv::data::scott_bandwidth(&points);
    let grid = GridSpec::new(dataset.mbr(), 320, 240)?;
    println!("Los Angeles (synthetic): n={}, b={:.0} m, raster 320x240\n", points.len(), bandwidth);

    for kernel in KernelType::ALL {
        println!("--- {kernel} kernel ---");
        let params = KdvParams::new(grid, kernel, bandwidth).with_weight(1.0 / points.len() as f64);
        let reference = AnyMethod::Scan.compute(&params, &points)?.grid;
        for method in AnyMethod::paper_lineup() {
            let t0 = std::time::Instant::now();
            let out = method.compute(&params, &points)?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let err = slam_kdv::core::stats::max_rel_error(out.grid.values(), reference.values());
            let status = if method.is_exact() {
                assert!(err < 1e-9, "{method} deviates: {err}");
                "exact".to_string()
            } else {
                format!("approx, max rel err {err:.1e}")
            };
            println!("{:<18} {:>9.1} ms   {status}", method.name(), ms);
        }
        println!();
    }
    Ok(())
}
