//! Interactive-style crime exploration (the paper's Figure-2 workload).
//!
//! ```text
//! cargo run --release --example crime_explorer
//! ```
//!
//! Drives an [`ExploreSession`] over the synthetic Seattle crime feed
//! through a realistic analyst workflow — overview, zoom, pan, bandwidth
//! change, attribute filter, time filter — and reports the per-step render
//! time. Every step is a full exact KDV; with SLAM each is interactive.

use slam_kdv::core::KernelType;
use slam_kdv::data::record::year_start;
use slam_kdv::explore::{Bandwidth, ExploreSession, Viewport};
use slam_kdv::viz::{render, ColorMap, Scale};
use slam_kdv::City;

fn report(step: &str, r: &slam_kdv::explore::RenderResult) {
    println!(
        "{step:<38} {:>7} pts  b={:>7.1} m  {:>8.1} ms  peak={:.4}",
        r.points_used,
        r.bandwidth,
        r.elapsed.as_secs_f64() * 1e3,
        r.grid.max_value()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = City::Seattle.dataset(0.01);
    let categories = City::Seattle.category_names();
    println!("Seattle crime events (synthetic): n={}\n", dataset.len());

    let mut session = ExploreSession::new(dataset);
    // keep the raster moderate so every step is quick in a demo build
    let mbr = session.viewport().region;
    session.set_viewport(Viewport::new(mbr, 640, 480));

    // 1. overview
    let r = session.render()?;
    report("overview (Scott bandwidth)", &r);
    render(&r.grid, ColorMap::Heat, Scale::Sqrt)
        .save_ppm(std::path::Path::new("seattle_overview.ppm"))?;

    // 2. zoom into downtown twice
    session.zoom(0.5);
    report("zoom x0.5", &session.render()?);
    session.zoom(0.5);
    let r = session.render()?;
    report("zoom x0.25", &r);

    // 3. pan one half-screen east
    session.pan(0.5, 0.0);
    report("pan east", &session.render()?);

    // 4. bandwidth selection: compare a tight and a smooth map
    session.set_bandwidth(Bandwidth::Fixed(250.0));
    report("bandwidth 250 m (sharp)", &session.render()?);
    session.set_bandwidth(Bandwidth::Fixed(1500.0));
    report("bandwidth 1500 m (smooth)", &session.render()?);
    session.set_bandwidth(Bandwidth::ScottRule);

    // 5. attribute-based filtering: robbery only (category 1)
    session.set_category(Some(1));
    let r = session.render()?;
    report(&format!("filter: {} only", categories[1]), &r);

    // 6. time-based filtering: calendar year 2019 (paper Figure 16 setup)
    session.set_time_window(Some((year_start(2019), year_start(2020))));
    let r = session.render()?;
    report("filter: + year 2019", &r);
    render(&r.grid, ColorMap::Viridis, Scale::Log)
        .save_ppm(std::path::Path::new("seattle_robbery_2019.ppm"))?;

    // 7. clear filters, switch kernel
    session.set_category(None).set_time_window(None);
    session.set_kernel(KernelType::Quartic);
    report("quartic kernel (QGIS default)", &session.render()?);

    println!("\nwrote seattle_overview.ppm, seattle_robbery_2019.ppm");
    Ok(())
}
