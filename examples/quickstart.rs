//! Quickstart: compute a kernel density visualization with SLAM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small synthetic city, computes the exact KDV with the
//! paper's best method (SLAM_BUCKET^(RAO)), cross-checks it against the
//! naive SCAN baseline, and writes a heat-map image.

use slam_kdv::baselines::AnyMethod;
use slam_kdv::core::driver::KdvParams;
use slam_kdv::viz::{ascii_art, render, ColorMap, Scale};
use slam_kdv::{City, GridSpec, KdvEngine, KernelType, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset: synthetic Seattle at 0.5% of the paper's size.
    let dataset = City::Seattle.dataset(0.005);
    let points = dataset.points();
    println!("dataset: {} with {} events", dataset.name, points.len());

    // 2. A query: the dataset MBR rasterised at 320x240, Epanechnikov
    //    kernel, Scott's-rule bandwidth.
    let bandwidth = slam_kdv::data::scott_bandwidth(&points);
    let grid = GridSpec::new(dataset.mbr(), 320, 240)?;
    let params = KdvParams::new(grid, KernelType::Epanechnikov, bandwidth)
        .with_weight(1.0 / points.len() as f64);
    println!("bandwidth (Scott's rule): {bandwidth:.1} m");

    // 3. Compute the exact KDV with the paper's best method.
    let t0 = std::time::Instant::now();
    let density = KdvEngine::new(Method::SlamBucketRao).compute(&params, &points)?;
    println!("SLAM_BUCKET^(RAO): {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    // 4. Cross-check exactness against the naive O(XYn) scan.
    let t0 = std::time::Instant::now();
    let reference = AnyMethod::Scan.compute(&params, &points)?.grid;
    println!("SCAN:              {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    let err = slam_kdv::core::stats::max_rel_error(density.values(), reference.values());
    println!("max relative difference vs SCAN: {err:.2e} (exact up to rounding)");

    // 5. Render a heat map.
    let image = render(&density, ColorMap::Heat, Scale::Sqrt);
    image.save_ppm(std::path::Path::new("quickstart.ppm"))?;
    println!("wrote quickstart.ppm ({}x{})", density.res_x(), density.res_y());

    // 6. Tiny ASCII preview (coarser grid so it fits a terminal).
    let preview_grid = GridSpec::new(dataset.mbr(), 64, 24)?;
    let preview_params = KdvParams::new(preview_grid, KernelType::Epanechnikov, bandwidth)
        .with_weight(1.0 / points.len() as f64);
    let preview = KdvEngine::new(Method::SlamBucketRao).compute(&preview_params, &points)?;
    println!("\n{}", ascii_art(&preview, Scale::Sqrt));
    Ok(())
}
