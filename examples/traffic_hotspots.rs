//! Traffic-accident hotspot detection (the paper's Figure-1 scenario).
//!
//! ```text
//! cargo run --release --example traffic_hotspots
//! ```
//!
//! Uses the synthetic New York traffic-accident feed, renders the
//! city-wide KDV, then zooms into the two densest regions (the paper shows
//! Upper and Lower Manhattan) and renders each at full resolution —
//! exactly the "generate many KDVs per dataset" workload SLAM targets.

use slam_kdv::core::driver::KdvParams;
use slam_kdv::viz::{render, ColorMap, Scale};
use slam_kdv::{City, GridSpec, KdvEngine, KernelType, Method, Rect};

/// Finds the hottest pixel of a density grid and returns the surrounding
/// window (a crude but effective hotspot-region proposer).
fn hotspot_window(
    grid: &slam_kdv::DensityGrid,
    spec: &GridSpec,
    half_extent_m: f64,
    exclude: Option<Rect>,
) -> Rect {
    let mut best = (0usize, 0usize, f64::MIN);
    for j in 0..grid.res_y() {
        for i in 0..grid.res_x() {
            let c = spec.pixel_center(i, j);
            if let Some(ex) = exclude {
                if ex.contains(&c) {
                    continue;
                }
            }
            if grid.get(i, j) > best.2 {
                best = (i, j, grid.get(i, j));
            }
        }
    }
    let c = spec.pixel_center(best.0, best.1);
    Rect::new(c.x - half_extent_m, c.y - half_extent_m, c.x + half_extent_m, c.y + half_extent_m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = City::NewYork.dataset(0.01);
    let points = dataset.points();
    let bandwidth = slam_kdv::data::scott_bandwidth(&points);
    let engine = KdvEngine::new(Method::SlamBucketRao);
    let weight = 1.0 / points.len() as f64;
    println!("New York traffic accidents (synthetic): n={}, b={:.0} m", points.len(), bandwidth);

    // city-wide overview
    let overview_spec = GridSpec::new(dataset.mbr(), 640, 480)?;
    let overview_params =
        KdvParams::new(overview_spec, KernelType::Epanechnikov, bandwidth).with_weight(weight);
    let t0 = std::time::Instant::now();
    let overview = engine.compute(&overview_params, &points)?;
    println!("overview 640x480 in {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);
    render(&overview, ColorMap::Heat, Scale::Sqrt)
        .save_ppm(std::path::Path::new("ny_overview.ppm"))?;

    // zoom into the two hottest regions (paper: Upper/Lower Manhattan)
    let first = hotspot_window(&overview, &overview_spec, 3_000.0, None);
    let second = hotspot_window(&overview, &overview_spec, 3_000.0, Some(first));
    for (idx, region) in [first, second].into_iter().enumerate() {
        let spec = GridSpec::new(region, 640, 480)?;
        // tighter bandwidth for the zoomed view, like re-running Scott on
        // the visible subset
        let visible: Vec<_> = points.iter().filter(|p| region.contains(p)).copied().collect();
        let b = slam_kdv::data::scott_bandwidth(&visible).max(bandwidth / 8.0);
        let params = KdvParams::new(spec, KernelType::Epanechnikov, b)
            .with_weight(1.0 / visible.len().max(1) as f64);
        let t0 = std::time::Instant::now();
        let zoom = engine.compute(&params, &points)?;
        let file = format!("ny_hotspot_{}.ppm", idx + 1);
        println!(
            "hotspot {} around ({:.0}, {:.0}): {} visible events, {:.1} ms -> {file}",
            idx + 1,
            region.center().x,
            region.center().y,
            visible.len(),
            t0.elapsed().as_secs_f64() * 1e3,
        );
        render(&zoom, ColorMap::Heat, Scale::Sqrt).save_ppm(std::path::Path::new(&file))?;
    }
    Ok(())
}
