//! Spatial-temporal KDV animation (the paper's future-work scenario:
//! "visualizing the distribution of COVID-19 cases").
//!
//! ```text
//! cargo run --release --example outbreak_animation
//! ```
//!
//! Synthesises an outbreak that ignites downtown and migrates outward
//! over twelve weeks, then renders a weekly STKDV animation with an
//! Epanechnikov temporal kernel. Each frame is one weighted SLAM sweep;
//! frames are written as `outbreak_NN.ppm` plus a terminal strip chart of
//! total intensity over time.

use slam_kdv::core::driver::KdvParams;
use slam_kdv::core::geom::{Point, Rect};
use slam_kdv::core::{GridSpec, KernelType};
use slam_kdv::data::record::EventRecord;
use slam_kdv::temporal::{compute_stkdv, FrameSpec, StKdvConfig, TemporalKernel};
use slam_kdv::viz::{render, ColorMap, Scale};

const DAY: i64 = 86_400;

/// A moving outbreak: cases start near the centre and drift north-east
/// while the case rate rises then falls (a classic epidemic curve).
fn synthesize_outbreak() -> Vec<EventRecord> {
    let mut records = Vec::new();
    let mut state = 0xC0F1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let total_days = 84; // twelve weeks
    for day in 0..total_days {
        let t = day as f64 / total_days as f64;
        // epidemic curve: rises to a peak at ~40% then decays
        let rate = (120.0 * (-((t - 0.4) * (t - 0.4)) / 0.03).exp()) as usize + 2;
        // epicentre drifts north-east over time
        let cx = 4_000.0 + 3_000.0 * t;
        let cy = 4_000.0 + 2_500.0 * t;
        let spread = 500.0 + 800.0 * t; // widening
        for _ in 0..rate {
            // Box–Muller
            let u1: f64 = 1.0 - next();
            let u2 = next();
            let r = (-2.0 * u1.ln()).sqrt();
            let (dx, dy) =
                (r * (std::f64::consts::TAU * u2).cos(), r * (std::f64::consts::TAU * u2).sin());
            records.push(EventRecord {
                point: Point::new(cx + spread * dx, cy + spread * dy),
                timestamp: day as i64 * DAY + (next() * DAY as f64) as i64,
                category: 0,
            });
        }
    }
    records
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = synthesize_outbreak();
    println!("synthetic outbreak: {} cases over 12 weeks", records.len());

    let region = Rect::new(0.0, 0.0, 10_000.0, 9_000.0);
    let grid = GridSpec::new(region, 320, 288)?;
    let config = StKdvConfig {
        params: KdvParams::new(grid, KernelType::Epanechnikov, 900.0).with_weight(1e-3),
        frames: FrameSpec::new(0, 7 * DAY, 12), // weekly frames
        temporal_bandwidth: 10 * DAY,
        temporal_kernel: TemporalKernel::Epanechnikov,
    };

    let t0 = std::time::Instant::now();
    let frames = compute_stkdv(&config, &records)?;
    println!(
        "computed {} frames ({}x{}) in {:.1} ms\n",
        frames.len(),
        grid.res_x,
        grid.res_y,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // strip chart of total intensity + per-frame hotspot location
    let max_total = frames.iter().map(|f| f.grid.total()).fold(0.0_f64, f64::max);
    for (i, frame) in frames.iter().enumerate() {
        let total = frame.grid.total();
        let bars = ((total / max_total) * 40.0).round() as usize;
        // hotspot centre
        let mut hot = (0usize, 0usize, f64::MIN);
        for j in 0..frame.grid.res_y() {
            for x in 0..frame.grid.res_x() {
                if frame.grid.get(x, j) > hot.2 {
                    hot = (x, j, frame.grid.get(x, j));
                }
            }
        }
        let c = grid.pixel_center(hot.0, hot.1);
        println!(
            "week {:>2}  {:>5} cases in window  |{:<40}|  hotspot ({:>5.0}, {:>5.0})",
            i + 1,
            frame.events,
            "#".repeat(bars),
            c.x,
            c.y
        );
        let file = format!("outbreak_{:02}.ppm", i + 1);
        render(&frame.grid, ColorMap::Heat, Scale::Sqrt).save_ppm(std::path::Path::new(&file))?;
    }
    println!("\nwrote outbreak_01.ppm .. outbreak_12.ppm");
    Ok(())
}
