//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors the tiny slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `f64`/`bool`, and [`Rng::gen_range`] over primitive ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, with statistical quality far beyond what the test-suite's
//! moment/uniformity checks need. Streams are NOT bit-compatible with the
//! real `rand` crate; nothing in this workspace depends on specific values,
//! only on determinism and distribution shape.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`'s behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + (hi - lo) * u
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw: bias is span/2^64, invisible at test scales.
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type (`f64` in `[0,1)`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a primitive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let f = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&f));
            let i = rng.gen_range(10i64..20);
            assert!((10..20).contains(&i));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "heads {heads}");
    }
}
