//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no registry access, so the workspace vendors the
//! API slice its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is honest but simple: per benchmark it warms up briefly, then
//! takes `sample_size` samples (auto-scaled iteration count per sample) and
//! prints min/median/mean nanoseconds per iteration. There are no plots,
//! baselines, or statistical regressions — just numbers on stdout, which is
//! what a headless container can use.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Collected per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations so each sample is long
    /// enough to measure (~2 ms minimum).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count worth timing.
        let mut iters = 1u64;
        let mut once;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            once = start.elapsed();
            if once >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.samples.push(total / iters as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{label:<48} min {:>12.1} ns/iter   median {:>12.1}   mean {:>12.1}",
            min, median, mean
        );
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher { sample_size: self.criterion.sample_size, samples: Vec::new() };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher { sample_size: self.criterion.sample_size, samples: Vec::new() };
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup { name, criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("sort", 32).to_string(), "sort/32");
        assert_eq!(BenchmarkId::from_parameter("bucket").to_string(), "bucket");
    }
}
