//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of proptest it uses: the [`Strategy`] trait with `prop_map`,
//! numeric range strategies, tuple composition, `prop::collection::vec`,
//! `prop::sample::select`, `prop::num::f64::NORMAL`, the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberate for a test-only stand-in:
//! - **No shrinking.** A failing case reports the generated input verbatim.
//! - **Deterministic seeding** from the test name, so failures reproduce on
//!   every run.
//! - Value distributions are not bit-compatible with upstream.
//!
//! ## Regression persistence
//!
//! Sibling `.proptest-regressions` files ARE loaded and replayed, like
//! upstream: every `cc <hex> # comment` line is re-run before novel cases
//! are generated, and new failures append a `cc {seed:016x}` line. A
//! 16-hex-digit token is this stub's own exact `u64` seed; longer tokens
//! (upstream's 64-hex digests, whose original byte-for-byte inputs this
//! stub cannot reconstruct) are FNV-hashed to a deterministic seed so the
//! recorded entry still drives a reproducible case. Malformed entries are
//! a hard error — a regressions file that silently stopped parsing would
//! silently stop guarding (`tests/regression_replay_guard.rs` enforces
//! this end to end). Set `PROPTEST_REGRESSIONS_FILE` to override the file
//! location (used by the guard test to inject a corrupted file).

use std::fmt::Debug;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Deterministic generator used by strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator from a 64-bit seed via SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut word = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [word(), word(), word(), word()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A recipe for generating test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_strategies {
    ($($t:ty => $max:expr),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=$max).generate(rng)
            }
        }
    )*};
}

int_strategies!(
    u8 => u8::MAX, u16 => u16::MAX, u32 => u32::MAX, u64 => u64::MAX,
    usize => usize::MAX, i8 => i8::MAX, i16 => i16::MAX, i32 => i32::MAX,
    i64 => i64::MAX, isize => isize::MAX
);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(A.0, B.1, C.2, D.3, E.4)(
    A.0, B.1, C.2, D.3, E.4, F.5
));

/// Combinator namespaces mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with uniformly drawn length in `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `Vec` of values from `elem` with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec-length range");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy picking uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }

    /// Numeric strategies.
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            use crate::{Strategy, TestRng};

            /// Strategy over normal (non-zero, non-subnormal, finite)
            /// `f64` bit patterns of either sign and any magnitude.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalF64;

            /// All normal `f64` values.
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    loop {
                        let v = f64::from_bits(rng.next_u64());
                        if v.is_normal() {
                            return v;
                        }
                    }
                }
            }
        }
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Rejection budget before the runner gives up (`prop_assume!`).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, max_global_rejects: 1024 + cases * 16 }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition.
    Reject(String),
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Locates the `.proptest-regressions` file for a property declared in
/// `source_file` (as given by `file!()`, which cargo emits relative to
/// the workspace root) within the crate at `manifest_dir`.
///
/// `PROPTEST_REGRESSIONS_FILE` overrides the location unconditionally.
/// Otherwise the source path is resolved against the manifest dir and its
/// ancestors (covering both root-package and workspace-member layouts)
/// and the `.rs` extension is swapped; `None` means the source file could
/// not be located, so there is nowhere to read or record regressions.
fn regressions_path(source_file: &str, manifest_dir: &str) -> Option<PathBuf> {
    if let Ok(over) = std::env::var("PROPTEST_REGRESSIONS_FILE") {
        return Some(PathBuf::from(over));
    }
    let rel = Path::new(source_file);
    let source = if rel.exists() {
        rel.to_path_buf()
    } else {
        Path::new(manifest_dir).ancestors().map(|a| a.join(rel)).find(|p| p.exists())?
    };
    Some(source.with_extension("proptest-regressions"))
}

/// Parses the recorded seeds out of a regressions file's contents.
///
/// Panics on any `cc` line whose token is not valid hex: a regressions
/// file that stopped parsing would silently stop guarding.
fn parse_regression_seeds(contents: &str, path: &Path) -> Vec<u64> {
    let mut seeds = Vec::new();
    for (lineno, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix("cc ") else {
            panic!(
                "{}:{}: malformed .proptest-regressions line (expected `cc <hex>`): {line}",
                path.display(),
                lineno + 1
            );
        };
        let token = rest.split_whitespace().next().unwrap_or("");
        let valid_hex = !token.is_empty() && token.bytes().all(|b| b.is_ascii_hexdigit());
        assert!(
            valid_hex,
            "{}:{}: malformed .proptest-regressions seed token {token:?}",
            path.display(),
            lineno + 1
        );
        if token.len() == 16 {
            // this stub's own exact u64 seed
            seeds.push(u64::from_str_radix(token, 16).expect("validated hex"));
        } else {
            // an upstream digest: hash to a deterministic replay seed
            seeds.push(fnv1a(token));
        }
    }
    seeds
}

/// Appends a newly failing seed to the regressions file, creating it with
/// the customary header if absent. Best-effort: persistence must not mask
/// the test failure itself.
fn persist_seed(path: &Path, seed: u64, input: &str) {
    let mut contents = std::fs::read_to_string(path).unwrap_or_else(|_| {
        "# Seeds for failure cases proptest has generated in the past. It is\n\
         # automatically read and these particular cases re-run before any\n\
         # novel cases are generated.\n\
         #\n\
         # It is recommended to check this file in to source control so that\n\
         # everyone who runs the test benefits from these saved cases.\n"
            .to_string()
    });
    let entry = format!("cc {seed:016x} # shrinks to {input}\n");
    if contents.contains(&format!("cc {seed:016x}")) {
        return;
    }
    contents.push_str(&entry);
    let _ = std::fs::write(path, contents);
}

/// Drives one property: replays recorded regression seeds, then generates
/// inputs, runs the body, and reports failures with the offending input
/// (persisting the failing seed). Called by the [`proptest!`] macro.
pub fn run_proptest<S, F>(
    config: &ProptestConfig,
    name: &str,
    source_file: &str,
    manifest_dir: &str,
    strategy: &S,
    test: F,
) where
    S: Strategy,
    S::Value: Debug + Clone,
    F: Fn(S::Value) -> TestCaseResult,
{
    let regressions = regressions_path(source_file, manifest_dir);

    // 1. replay recorded regressions before any novel case
    if let Some(path) = &regressions {
        if let Ok(contents) = std::fs::read_to_string(path) {
            for seed in parse_regression_seeds(&contents, path) {
                let mut rng = TestRng::from_seed(seed);
                let value = strategy.generate(&mut rng);
                let kept = value.clone();
                match catch_unwind(AssertUnwindSafe(|| test(value))) {
                    Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                    Ok(Err(TestCaseError::Fail(msg))) => panic!(
                        "{name}: replayed regression cc {seed:016x} from {} failed: {msg}\n  \
                         input: {kept:?}",
                        path.display()
                    ),
                    Err(payload) => {
                        eprintln!(
                            "{name}: panic replaying regression cc {seed:016x} from {}\n  \
                             input: {kept:?}",
                            path.display()
                        );
                        resume_unwind(payload);
                    }
                }
            }
        }
    }

    // 2. novel cases
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        case += 1;
        let value = strategy.generate(&mut rng);
        let kept = value.clone();
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections (last: {why})"
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                if let Some(path) = &regressions {
                    persist_seed(path, seed, &format!("{kept:?}"));
                }
                panic!("{name}: property failed at case {case}: {msg}\n  input: {kept:?}")
            }
            Err(payload) => {
                if let Some(path) = &regressions {
                    persist_seed(path, seed, &format!("{kept:?}"));
                }
                eprintln!("{name}: panic at case {case}\n  input: {kept:?}");
                resume_unwind(payload);
            }
        }
    }
}

/// Asserts a condition inside a property, recording the strategy inputs on
/// failure (returns `Err(TestCaseError::Fail)` rather than panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Discards the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    // Internal muncher arms must come first: the public entry arms below
    // are catch-alls and would otherwise shadow them.
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::run_proptest(
                &config,
                stringify!($name),
                file!(),
                env!("CARGO_MANIFEST_DIR"),
                &strategy,
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    // With a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    // Without one: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..1_000 {
            let f = (2.0f64..3.0).generate(&mut rng);
            assert!((2.0..3.0).contains(&f));
            let u = (5u32..9).generate(&mut rng);
            assert!((5..9).contains(&u));
            let any = (0u64..).generate(&mut rng);
            let _ = any;
        }
    }

    #[test]
    fn vec_and_select_compose_with_map() {
        let strat =
            prop::collection::vec((0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b), 3..7);
        let mut rng = crate::TestRng::from_seed(2);
        let v = strat.generate(&mut rng);
        assert!((3..7).contains(&v.len()));
        assert!(v.iter().all(|&x| (0.0..2.0).contains(&x)));
        let sel = prop::sample::select(vec![10, 20, 30]);
        for _ in 0..50 {
            assert!([10, 20, 30].contains(&sel.generate(&mut rng)));
        }
    }

    #[test]
    fn normal_f64_is_normal() {
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..200 {
            assert!(prop::num::f64::NORMAL.generate(&mut rng).is_normal());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, assumes and asserts together.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0u32..1_000, 0u32..1_000),
            extra in prop::sample::select(vec![1u32, 2, 3]),
        ) {
            prop_assume!(a != b);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(hi > lo, "hi {} lo {}", hi, lo);
            prop_assert_eq!(hi + extra - extra, hi);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_inputs() {
        let config = ProptestConfig::with_cases(8);
        // a source path that resolves nowhere: no regressions to replay,
        // and nothing is persisted by the expected failure
        crate::run_proptest(
            &config,
            "always_fails",
            "no_such_source_file.rs",
            env!("CARGO_MANIFEST_DIR"),
            &(0u32..10,),
            |(v,)| {
                prop_assert!(v > 100, "v was {}", v);
                Ok(())
            },
        );
    }

    #[test]
    fn regression_seed_parsing() {
        let path = std::path::Path::new("example.proptest-regressions");
        // comments and blanks are skipped; 16-hex is an exact seed; longer
        // upstream digests hash to a deterministic seed
        let contents = "# header\n\ncc 00000000000000ff # shrinks to x\ncc ".to_string()
            + &"ab".repeat(32)
            + " # upstream digest\n";
        let seeds = crate::parse_regression_seeds(&contents, path);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0xff);
        assert_eq!(seeds[1], crate::fnv1a(&"ab".repeat(32)));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn corrupted_regression_seed_is_a_hard_error() {
        let path = std::path::Path::new("example.proptest-regressions");
        crate::parse_regression_seeds("cc not-hex-at-all # ?\n", path);
    }

    #[test]
    fn persisted_seeds_round_trip() {
        let dir = std::env::temp_dir().join("proptest-stub-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.proptest-regressions");
        let _ = std::fs::remove_file(&path);
        crate::persist_seed(&path, 0xdead_beef_0123_4567, "(1, 2.0)");
        // idempotent: the same seed is not duplicated
        crate::persist_seed(&path, 0xdead_beef_0123_4567, "(1, 2.0)");
        let contents = std::fs::read_to_string(&path).unwrap();
        let seeds = crate::parse_regression_seeds(&contents, &path);
        assert_eq!(seeds, vec![0xdead_beef_0123_4567]);
        let _ = std::fs::remove_file(&path);
    }
}
